#include "service/cooperation_service.hpp"

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bba::service {

namespace {

/// Decorrelated per-session RNG stream: the same (seed, peerId) always
/// yields the same stream, and distinct peers never share one (same
/// mixing discipline as dataset/fault.cpp's frameRng).
std::uint64_t sessionSeed(std::uint64_t serviceSeed, std::uint64_t peerId) {
  return serviceSeed ^ (peerId * 0x9E3779B97F4A7C15ULL) ^
         0xC2B2AE3D27D4EB4FULL;
}

void appendStatsJson(std::string& out, const SessionStats& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"peer\":%llu,\"frames\":%d,\"link_drops\":%d,\"decode_ok\":%d,"
      "\"decode_failed\":%d,\"payload_mismatch\":%d,\"bytes_received\":%lld,"
      "\"poses_reported\":%d,\"last_confidence\":%.6f,"
      "\"pregate_skips\":%d,\"shed_frames\":%d,\"recover_slots\":%d",
      static_cast<unsigned long long>(s.peerId), s.frames, s.linkDrops,
      s.decodeOk, s.decodeFailed, s.payloadMismatch,
      static_cast<long long>(s.bytesReceived), s.posesReported,
      s.lastConfidence, s.pregateSkips, s.shedFrames, s.recoverSlots);
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      ",\"lifecycle\":{\"silent_frames\":%d,\"duplicate_rejects\":%d,"
      "\"evictions\":%d,\"reaps\":%d,\"readmissions\":%d,\"retired\":%d}",
      s.silentFrames, s.duplicateRejects, s.evictions, s.reaps,
      s.readmissions, s.retired ? 1 : 0);
  out += buf;
  out += ",\"reject_by_cause\":{";
  bool first = true;
  for (int i = 1; i < wire::kDecodeErrorCount; ++i) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof buf, "\"%s\":%d",
                  wire::toString(static_cast<wire::DecodeError>(i)),
                  s.rejectByCause[static_cast<std::size_t>(i)]);
    out += buf;
  }
  out += "},\"outcomes\":{";
  for (int i = 0; i < kTrackerOutcomeCount; ++i) {
    if (i > 0) out += ',';
    std::snprintf(buf, sizeof buf, "\"%s\":%d",
                  toString(static_cast<TrackerOutcome>(i)),
                  s.outcomes[static_cast<std::size_t>(i)]);
    out += buf;
  }
  out += "},\"health\":{";
  std::snprintf(
      buf, sizeof buf,
      "\"state\":\"%s\",\"suspicion\":%d,\"quarantines\":%d,"
      "\"quarantined_frames\":%d,\"replay_rejects\":%d,"
      "\"validation_rejects\":%d,\"gate_rejects\":%d,"
      "\"consistency_outliers\":%d,\"transitions\":{",
      toString(s.health), s.suspicion, s.quarantines, s.quarantinedFrames,
      s.replayRejects, s.validationRejects, s.gateRejects,
      s.consistencyOutliers);
  out += buf;
  // Transition tally: only the edges actually taken, in fixed
  // (from, to) enum order — stable keys, no noise from impossible edges.
  bool firstEdge = true;
  for (int from = 0; from < kPeerHealthCount; ++from) {
    for (int to = 0; to < kPeerHealthCount; ++to) {
      const int count = s.healthTransitions[static_cast<std::size_t>(from)]
                                           [static_cast<std::size_t>(to)];
      if (count == 0) continue;
      if (!firstEdge) out += ',';
      firstEdge = false;
      std::snprintf(buf, sizeof buf, "\"%s>%s\":%d",
                    toString(static_cast<PeerHealth>(from)),
                    toString(static_cast<PeerHealth>(to)), count);
      out += buf;
    }
  }
  out += "}}}";
}

}  // namespace

std::string ServiceReport::toJson() const {
  std::string out;
  out.reserve(512 + sessions.size() * 512);
  char buf[64];
  std::snprintf(buf, sizeof buf,
                "{\"frames\":%d,\"rejected_full\":%d,\"sessions\":[",
                framesProcessed, rejectedFull);
  out += buf;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    if (i > 0) out += ',';
    appendStatsJson(out, sessions[i]);
  }
  out += "],\"aggregate\":";
  appendStatsJson(out, aggregate);
  out += "}";
  return out;
}

wire::CooperativeMessage toMessage(const CarPerceptionData& data,
                                   std::uint64_t senderId,
                                   std::uint32_t frameIndex,
                                   std::int64_t captureTimeMicros,
                                   const Pose2* posePrior) {
  wire::CooperativeMessage msg;
  msg.senderId = senderId;
  msg.frameIndex = frameIndex;
  msg.captureTimeMicros = captureTimeMicros;
  if (posePrior != nullptr) {
    msg.hasPosePrior = true;
    msg.posePrior = *posePrior;
  }
  msg.bvImage = data.bvImage;
  msg.boxes = data.boxes;
  return msg;
}

CarPerceptionData toCarData(const wire::CooperativeMessage& msg) {
  return CarPerceptionData{msg.bvImage, msg.boxes};
}

struct CooperationService::Session {
  Session(std::uint64_t id, const ServiceConfig& cfg)
      : peerId(id), tracker(cfg.tracker), rng(sessionSeed(cfg.seed, id)),
        health(cfg.health) {
    stats.peerId = id;
  }

  std::uint64_t peerId;
  PoseTracker tracker;
  Rng rng;
  SessionStats stats;
  PeerHealthFsm health;
  /// Frames since this session was last granted a recover slot (see
  /// admission.hpp: resets on grant, so the shed rotation cannot starve).
  int staleness = 0;
  /// Consecutive service frames the peer has been absent from the inputs
  /// (the reaper's clock; resets whenever the peer appears).
  int silentRun = 0;
  /// Last fresh lock (Recovered / RecoveredRelaxed), kept for the
  /// eviction score and the readmission warm start.
  bool hadLock = false;
  Pose2 lastLockedPose;
  int lastLockFrame = 0;
  // Replay guard state: metadata of the last accepted message.
  bool haveLastMeta = false;
  std::uint32_t lastFrameIndex = 0;
  std::int64_t lastCaptureMicros = 0;
};

CooperationService::CooperationService(ServiceConfig config)
    : cfg_(std::move(config)), featureAligner_(cfg_.tracker.aligner) {
  BBA_ASSERT_MSG(cfg_.maxSessions >= 1, "maxSessions must be >= 1");
}

CooperationService::~CooperationService() = default;

CooperationService::Session& CooperationService::createSession(
    std::uint64_t peerId, bool* readmitted) {
  auto session = std::make_unique<Session>(peerId, cfg_);
  *readmitted = false;
  auto archived = retired_.find(peerId);
  if (archived != retired_.end()) {
    // A known peer returned: restore its cumulative stats and its trust
    // FSM (an evict/return cycle never launders a quarantine record), and
    // — when the last lock is fresh enough and the peer is trusted —
    // warm-start the new tracker from the archived pose so the returning
    // peer re-locks through the normal ladder instead of bootstrapping
    // blind. The RNG stream restarts from (seed, peerId) as on any fresh
    // session: readmission is deterministic by construction.
    const RetiredSession& r = archived->second;
    session->stats = r.stats;
    session->stats.retired = false;
    session->stats.readmissions += 1;
    session->health = r.health;
    session->hadLock = r.hadLock;
    session->lastLockedPose = r.lastLockedPose;
    session->lastLockFrame = r.lastLockFrame;
    session->haveLastMeta = r.haveLastMeta;
    session->lastFrameIndex = r.lastFrameIndex;
    session->lastCaptureMicros = r.lastCaptureMicros;
    if (cfg_.lifecycle.warmStartReadmissions && r.hadLock &&
        frames_ - r.lastLockFrame <= cfg_.lifecycle.warmStartMaxGapFrames &&
        r.health.shouldProcess()) {
      session->tracker.acceptExternalPose(r.lastLockedPose);
      BBA_COUNTER_ADD("session.warm_started", 1);
    }
    retired_.erase(archived);
    *readmitted = true;
    BBA_COUNTER_ADD("session.readmitted", 1);
  } else {
    BBA_COUNTER_ADD("session.admitted", 1);
  }
  auto it = sessions_.emplace(peerId, std::move(session)).first;
  BBA_COUNTER_ADD("service.sessions_created", 1);
  BBA_GAUGE_SET("service.sessions", static_cast<double>(sessions_.size()));
  BBA_GAUGE_SET("session.retired", static_cast<double>(retired_.size()));
  return *it->second;
}

void CooperationService::retireSession(std::uint64_t peerId) {
  auto it = sessions_.find(peerId);
  BBA_ASSERT_MSG(it != sessions_.end(), "retireSession: unknown peer");
  Session& s = *it->second;
  RetiredSession r;
  r.stats = s.stats;
  r.stats.retired = true;
  r.health = s.health;
  r.hadLock = s.hadLock;
  r.lastLockedPose = s.lastLockedPose;
  r.lastLockFrame = s.lastLockFrame;
  r.retiredAtFrame = frames_;
  r.haveLastMeta = s.haveLastMeta;
  r.lastFrameIndex = s.lastFrameIndex;
  r.lastCaptureMicros = s.lastCaptureMicros;
  BBA_HISTOGRAM_OBSERVE(
      "session.lifetime_frames",
      static_cast<double>(r.stats.frames + r.stats.silentFrames));
  retired_[peerId] = std::move(r);
  sessions_.erase(it);
  BBA_GAUGE_SET("service.sessions", static_cast<double>(sessions_.size()));
  BBA_GAUGE_SET("session.retired", static_cast<double>(retired_.size()));
}

std::vector<std::uint8_t> CooperationService::sendFrame(
    const CarPerceptionData& data, std::uint64_t senderId,
    std::uint32_t frameIndex, wire::EncodeStats* stats,
    const Pose2* posePrior, std::int64_t captureTimeMicros) const {
  return wire::encode(
      toMessage(data, senderId, frameIndex, captureTimeMicros, posePrior),
      cfg_.wire, stats);
}

std::vector<SessionFrameResult> CooperationService::processFrame(
    const CarPerceptionData& ego,
    const std::vector<PeerFrameInput>& inputs) {
  BBA_SPAN("service.processFrame");
  const std::int64_t n = static_cast<std::int64_t>(inputs.size());
  std::vector<SessionFrameResult> results(inputs.size());
  std::vector<Session*> bySlot(inputs.size(), nullptr);

  // ---- Session admission (serial, deterministic) -----------------------
  // Typed outcomes, never asserts: a repeated peer id within one call is
  // rejected (first occurrence wins), a newcomer auto-registers into a
  // free slot, and under maxSessions pressure either displaces the most
  // evictable ABSENT session (pure score, id tiebreak — see
  // session_lifecycle.hpp) or is rejected for this frame. Sessions whose
  // peers are present this frame are never evicted.
  std::unordered_set<std::uint64_t> presentIds;
  presentIds.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    results[i].peerId = inputs[i].peerId;
    if (!presentIds.insert(inputs[i].peerId).second)
      results[i].admission = SessionAdmission::RejectedDuplicate;
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::uint64_t peerId = inputs[i].peerId;
    SessionFrameResult& res = results[i];
    if (res.admission == SessionAdmission::RejectedDuplicate) continue;
    auto it = sessions_.find(peerId);
    if (it != sessions_.end()) {
      res.admission = SessionAdmission::Existing;
      bySlot[i] = it->second.get();
      continue;
    }
    if (static_cast<int>(sessions_.size()) >= cfg_.maxSessions) {
      std::optional<std::uint64_t> victim;
      if (cfg_.lifecycle.enableEviction) {
        std::vector<EvictionCandidate> candidates;
        candidates.reserve(sessions_.size());
        for (const auto& [id, s] : sessions_) {
          if (presentIds.count(id) != 0) continue;  // present: protected
          EvictionCandidate c;
          c.peerId = id;
          c.health = s->health.state();
          c.silentRunFrames = s->silentRun;
          c.lockStaleFrames =
              s->hadLock ? frames_ - s->lastLockFrame : frames_;
          c.hasTrack = s->tracker.hasTrack();
          c.lastConfidence = s->stats.lastConfidence;
          candidates.push_back(c);
        }
        victim = pickEvictionVictim(candidates, cfg_.lifecycle);
      }
      if (!victim) {
        res.admission = SessionAdmission::RejectedFull;
        rejectedFull_ += 1;
        BBA_COUNTER_ADD("session.rejected_full", 1);
        continue;
      }
      sessions_.at(*victim)->stats.evictions += 1;
      retireSession(*victim);
      BBA_COUNTER_ADD("session.evicted", 1);
      res.admission = SessionAdmission::AdmittedEvicting;
      res.evictedPeerId = *victim;
    } else {
      res.admission = SessionAdmission::Admitted;
    }
    bool readmitted = false;
    bySlot[i] = &createSession(peerId, &readmitted);
    res.readmission = readmitted;
  }

  // ---- Admission (serial, deterministic) -------------------------------
  // Stage 1, spatial pre-gate: peek each payload's wire prefix (framing +
  // CRC + claim; the BV image and boxes — the expensive 99% — stay
  // untouched) and drop sessions whose claimed pose cannot overlap the
  // ego BV footprint. A peek failure admits the payload so the full
  // decoder classifies (and the health FSM penalizes) the reject as
  // before. Claims only ever REMOVE work: they never seed a track, so a
  // spoofed claim can waste at most its own session's slot.
  struct Admission {
    bool pregateSkipped = false;
    bool priorFromTrack = false;
    bool shed = false;
    bool hasPeekClaim = false;
    Pose2 peekClaim;
  };
  std::vector<Admission> admission(inputs.size());
  std::vector<SlotCandidate> candidates;
  candidates.reserve(inputs.size());
  const double bvRange = cfg_.tracker.aligner.bev.range;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const PeerFrameInput& in = inputs[i];
    if (bySlot[i] == nullptr) continue;  // rejected: no session this frame
    if (in.payload == nullptr) continue;  // link drop: coasts, no slot
    if (cfg_.enableHealth && !bySlot[i]->health.shouldProcess())
      continue;  // quarantined: excluded entirely, not even peeked
    Admission& adm = admission[i];
    if (cfg_.pregate.enable) {
      const wire::MessagePeek pk = wire::peek(*in.payload);
      if (pk.error == wire::DecodeError::None && pk.hasPosePrior) {
        adm.hasPeekClaim = true;
        adm.peekClaim = pk.posePrior;
      }
      // Once the session is locked, gate on OUR dead-reckoned prediction
      // instead of the sender's word: a lying claim cannot keep an
      // in-range, already-locked peer held. Claims still gate
      // bootstrapping sessions (no own-state yet to predict from).
      std::optional<Pose2> gatePose;
      if (cfg_.pregate.useTrackPrior && bySlot[i]->tracker.hasTrack()) {
        gatePose = bySlot[i]->tracker.predictNext();
        adm.priorFromTrack = gatePose.has_value();
      }
      if (!gatePose && adm.hasPeekClaim) gatePose = adm.peekClaim;
      if (gatePose && !preGateAdmits(*gatePose, bvRange, cfg_.pregate)) {
        adm.pregateSkipped = true;
        continue;
      }
    }
    candidates.push_back({in.peerId, bySlot[i]->staleness, i});
  }

  // Stage 2, recover budget: staleness-first, ties by session id. The
  // schedule is a pure function of (session staleness, peer ids, budget)
  // — no wall clock, no thread count — so results stay byte-identical at
  // any BBA_THREADS. Staleness resets on GRANT (not on lock): a session
  // that keeps failing still rotates through, and no session waits more
  // than ceil(sessions/budget) frames.
  const int recoverBudget = effectiveRecoverBudget(cfg_.budget);
  std::vector<char> granted(inputs.size(), 0);
  if (recoverBudget > 0 &&
      candidates.size() > static_cast<std::size_t>(recoverBudget)) {
    for (std::size_t slot : grantRecoverSlots(candidates, recoverBudget))
      granted[slot] = 1;
    for (const auto& c : candidates)
      if (!granted[c.slot]) admission[c.slot].shed = true;
  } else {
    for (const auto& c : candidates) granted[c.slot] = 1;
  }
  bool anyGranted = false;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (bySlot[i] == nullptr) continue;
    Session& session = *bySlot[i];
    if (granted[i]) {
      session.staleness = 0;
      anyGranted = true;
    } else {
      session.staleness += 1;
    }
  }

  // Frame-scoped ego-feature sharing: each session "gets" this frame's
  // ego features from the cache — the first get computes them
  // (cache.ego_miss), every later get returns the same immutable set
  // (cache.ego_hit). One ego feature pipeline per frame instead of one
  // per peer; results are byte-identical either way because the cached
  // features come from the identical deterministic pipeline.
  // Skipped when the ego payload is absent or mis-sized (callers whose
  // every input coasts may legitimately pass an empty ego).
  // Skipped entirely when no session was granted a slot: an all-skipped/
  // all-shed/all-coasting frame must cost no ego pipeline either.
  std::shared_ptr<const EgoFeatures> sharedEgo;
  const int egoExpected = cfg_.tracker.aligner.bev.imageSize();
  if (cfg_.enableEgoFeatureCache && anyGranted &&
      ego.bvImage.width() == egoExpected &&
      ego.bvImage.height() == egoExpected) {
    BBA_SPAN("service.ego-features");
    for (std::int64_t i = 0; i < n; ++i)
      sharedEgo = egoCache_.features(static_cast<std::uint64_t>(frames_),
                                     featureAligner_, ego);
  }

  // Cross-session parallel, per-session serial: every input owns its
  // session exclusively (ids are distinct), so chunk grain 1 gives one
  // independent task per session and results are byte-identical at any
  // thread count.
  parallelFor(0, n, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const PeerFrameInput& in = inputs[static_cast<std::size_t>(i)];
      if (bySlot[static_cast<std::size_t>(i)] == nullptr)
        continue;  // typed rejection: no session, no tracker step
      Session& session = *bySlot[static_cast<std::size_t>(i)];
      SessionFrameResult& res = results[static_cast<std::size_t>(i)];
      if (cfg_.enableHealth && !session.health.shouldProcess()) {
        // Quarantined: the payload is not even decoded — exclusion is the
        // whole point. The FSM's backoff counts down in the merge below.
        res.quarantined = true;
        continue;
      }
      if (in.payload == nullptr) {
        res.track = session.tracker.coast(&res.report);
        continue;
      }
      const Admission& adm = admission[static_cast<std::size_t>(i)];
      if (adm.pregateSkipped || adm.shed) {
        // Tracked-but-not-aligned: the payload arrived but the admission
        // stage withheld it (out-of-range claim, or no budget left). The
        // tracker holds the pose by extrapolation without charging its
        // miss budget — skipFrame(), not coast().
        res.received = true;
        res.payloadBytes = in.payload->size();
        res.pregateSkipped = adm.pregateSkipped;
        res.pregatePriorFromTrack = adm.priorFromTrack;
        res.shed = adm.shed;
        if (adm.hasPeekClaim) {
          res.hasClaim = true;
          res.claim = adm.peekClaim;
        }
        res.track = session.tracker.skipFrame(&res.report);
        continue;
      }
      res.received = true;
      res.payloadBytes = in.payload->size();
      res.pregatePriorFromTrack = adm.priorFromTrack;
      wire::DecodeResult decoded = wire::decode(*in.payload);
      res.decodeError = decoded.error;
      if (decoded.error != wire::DecodeError::None) {
        // Corrupt traffic degrades to a dropped frame: the tracker's
        // ladder absorbs it exactly like a link drop.
        res.track = session.tracker.coast(&res.report);
        continue;
      }
      const wire::CooperativeMessage& msg = decoded.message;
      if (cfg_.enableReplayGuard && session.haveLastMeta) {
        // Monotonicity guard: a replayed payload carries its ORIGINAL
        // frame index / capture time, which cannot advance past the last
        // accepted message. Capture times of 0 mean "not stamped" and are
        // exempt (frame indices alone still guard those senders).
        const bool staleIndex = msg.frameIndex <= session.lastFrameIndex;
        const bool staleCapture =
            msg.captureTimeMicros != 0 && session.lastCaptureMicros != 0 &&
            msg.captureTimeMicros <= session.lastCaptureMicros;
        if (staleIndex || staleCapture) {
          res.replayRejected = true;
          res.track = session.tracker.coast(&res.report);
          continue;
        }
      }
      session.haveLastMeta = true;
      session.lastFrameIndex = msg.frameIndex;
      session.lastCaptureMicros = msg.captureTimeMicros;
      const int expected = cfg_.tracker.aligner.bev.imageSize();
      if (msg.bvImage.empty() || msg.bvImage.width() != expected ||
          msg.bvImage.height() != expected) {
        res.payloadMismatch = true;
        res.track = session.tracker.coast(&res.report);
        continue;
      }
      // The claim is recorded whether or not it is used as a warm start:
      // the cross-peer consistency vote below compares CLAIMS against
      // RECOVERED poses, and a spoofer's geometry recovers fine.
      res.hasClaim = msg.hasPosePrior;
      res.claim = msg.posePrior;
      if (cfg_.usePosePriors && msg.hasPosePrior &&
          !session.tracker.hasTrack()) {
        session.tracker.acceptExternalPose(msg.posePrior);
      }
      res.track = session.tracker.update(toCarData(msg), ego, session.rng,
                                         &res.report, sharedEgo.get());
    }
  });

  // Cross-peer consistency (serial, deterministic): with >= minPeers
  // freshly recovered sessions that also carried claims, every pair's
  // recovered relative pose T_a^-1∘T_b must match the claimed relative
  // P_a^-1∘P_b. A lying claim poisons every pair the liar is in, so the
  // liar (and only the liar) loses the majority vote. Honest sessions are
  // never mutated — their results stay byte-identical to a no-liar run.
  if (cfg_.enableHealth && cfg_.enableConsistency) {
    std::vector<std::size_t> voters;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const SessionFrameResult& r = results[i];
      const bool fresh = r.track.poseValid &&
                         (r.track.outcome == TrackerOutcome::Recovered ||
                          r.track.outcome == TrackerOutcome::RecoveredRelaxed);
      if (fresh && r.hasClaim && !r.quarantined && !r.replayRejected)
        voters.push_back(i);
    }
    const int p = static_cast<int>(voters.size());
    if (p >= cfg_.consistencyMinPeers) {
      for (int a = 0; a < p; ++a) {
        int mismatches = 0;
        const SessionFrameResult& ra = results[voters[static_cast<std::size_t>(a)]];
        for (int b = 0; b < p; ++b) {
          if (a == b) continue;
          const SessionFrameResult& rb =
              results[voters[static_cast<std::size_t>(b)]];
          const Pose2 recovered =
              ra.track.pose.inverse().compose(rb.track.pose);
          const Pose2 claimed = ra.claim.inverse().compose(rb.claim);
          const PoseError err = poseError(recovered, claimed);
          if (err.translation > cfg_.consistencyMaxTranslation ||
              err.rotationDeg > cfg_.consistencyMaxRotationDeg)
            mismatches += 1;
        }
        // Strict majority of this voter's pairs disagree => outlier.
        if (2 * mismatches > p - 1)
          results[voters[static_cast<std::size_t>(a)]].consistencyOutlier =
              true;
      }
    }
  }

  // Deterministic merge: stats, health FSM steps and service.*/health.*
  // metrics update in session-id order, never in completion order.
  std::unordered_map<std::uint64_t, std::size_t> slotOf;
  slotOf.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    slotOf.emplace(inputs[i].peerId, i);
  for (auto& [peerId, session] : sessions_) {
    auto found = slotOf.find(peerId);
    if (found == slotOf.end()) continue;  // peer absent this frame
    SessionFrameResult& res = results[found->second];
    SessionStats& st = session->stats;
    st.frames += 1;
    session->silentRun = 0;  // the peer showed up: the reaper clock resets
    if (!res.quarantined &&
        (res.track.outcome == TrackerOutcome::Recovered ||
         res.track.outcome == TrackerOutcome::RecoveredRelaxed)) {
      session->hadLock = true;
      session->lastLockedPose = res.track.pose;
      session->lastLockFrame = frames_;
    }
    if (res.quarantined) {
      st.quarantinedFrames += 1;
      BBA_COUNTER_ADD("health.quarantined_frames", 1);
    } else {
      st.outcomes[static_cast<std::size_t>(res.track.outcome)] += 1;
      st.lastConfidence = res.track.confidence;
      if (res.pregateSkipped) {
        st.pregateSkips += 1;
        BBA_COUNTER_ADD("service.pregate_skipped", 1);
        if (res.pregatePriorFromTrack)
          BBA_COUNTER_ADD("service.pregate_track_prior", 1);
      } else if (res.shed) {
        st.shedFrames += 1;
        BBA_COUNTER_ADD("service.shed", 1);
      } else if (!res.received) {
        st.linkDrops += 1;
        BBA_COUNTER_ADD("service.link_drops", 1);
      } else if (res.decodeError != wire::DecodeError::None) {
        st.decodeFailed += 1;
        st.rejectByCause[static_cast<std::size_t>(res.decodeError)] += 1;
        BBA_COUNTER_ADD("service.decode_failed", 1);
      } else if (res.replayRejected) {
        st.replayRejects += 1;
        BBA_COUNTER_ADD("health.replay_rejected", 1);
      } else {
        st.decodeOk += 1;
        st.bytesReceived += static_cast<std::int64_t>(res.payloadBytes);
        if (res.payloadMismatch) {
          st.payloadMismatch += 1;
          BBA_COUNTER_ADD("service.payload_mismatch", 1);
        }
      }
      if (res.report.validationRejected) st.validationRejects += 1;
      if (res.report.gateRejected) st.gateRejects += 1;
      if (res.consistencyOutlier) {
        st.consistencyOutliers += 1;
        BBA_COUNTER_ADD("health.consistency_outliers", 1);
      }
      if (res.track.poseValid) {
        st.posesReported += 1;
        BBA_COUNTER_ADD("service.poses_reported", 1);
      }
      if (res.received && !res.pregateSkipped && !res.shed) {
        // Granted a decode+recover slot (whether or not the decode then
        // succeeded — the slot was spent either way).
        st.recoverSlots += 1;
        BBA_COUNTER_ADD("service.recover_slots", 1);
      }
    }
    if (cfg_.enableHealth) {
      const PeerHealthConfig& h = cfg_.health;
      int penalty = 0;
      if (!res.quarantined) {
        // A pure link drop is weather, not malice: no penalty. Everything
        // a *sender* controls feeds the FSM.
        if (res.received && res.decodeError != wire::DecodeError::None)
          penalty += h.penaltyDecodeReject;
        if (res.payloadMismatch) penalty += h.penaltyDecodeReject;
        if (res.replayRejected) penalty += h.penaltyReplay;
        if (res.report.validationRejected) penalty += h.penaltyValidation;
        if (res.report.gateRejected) penalty += h.penaltyGateReject;
        if (res.consistencyOutlier) penalty += h.penaltyConsistency;
      }
      const PeerHealth before = session->health.state();
      res.health = session->health.onFrame(res.quarantined ? 0 : penalty);
      BBA_COUNTER_ADD("health.frames", 1);
      BBA_HISTOGRAM_OBSERVE("health.penalty", static_cast<double>(penalty));
      BBA_HISTOGRAM_OBSERVE("health.suspicion",
                            static_cast<double>(session->health.suspicion()));
      if (res.health != before) {
        switch (res.health) {
          case PeerHealth::Healthy:
            BBA_COUNTER_ADD("health.to_healthy", 1);
            break;
          case PeerHealth::Suspect:
            BBA_COUNTER_ADD("health.to_suspect", 1);
            break;
          case PeerHealth::Quarantined:
            BBA_COUNTER_ADD("health.to_quarantined", 1);
            break;
          case PeerHealth::Probing:
            BBA_COUNTER_ADD("health.to_probing", 1);
            break;
        }
      }
      st.health = session->health.state();
      st.suspicion = session->health.suspicion();
      st.quarantines = session->health.quarantines();
      st.healthTransitions = session->health.transitions();
    } else {
      res.health = PeerHealth::Healthy;
    }
  }
  // Duplicate accounting (serial, input order): the rejection is typed on
  // the result; the tally lands on the peer's session when one exists.
  for (const SessionFrameResult& res : results) {
    if (res.admission != SessionAdmission::RejectedDuplicate) continue;
    BBA_COUNTER_ADD("session.duplicate_rejected", 1);
    auto dup = sessions_.find(res.peerId);
    if (dup != sessions_.end()) dup->second->stats.duplicateRejects += 1;
  }

  // Silent-peer reaper (serial, id order, logical frame counts only): a
  // session whose peer sat out this frame ages one silent frame; past
  // maxSilentFrames it is retired — archived for a possible return, slot
  // freed. Survivors' RNG streams, trackers and stats are untouched: a
  // reap changes which ids EXIST, never what the others compute.
  std::vector<std::uint64_t> reap;
  for (auto& [peerId, session] : sessions_) {
    if (presentIds.count(peerId) != 0) continue;
    session->silentRun += 1;
    session->stats.silentFrames += 1;
    BBA_COUNTER_ADD("session.silent_frames", 1);
    if (cfg_.lifecycle.maxSilentFrames > 0 &&
        session->silentRun > cfg_.lifecycle.maxSilentFrames)
      reap.push_back(peerId);
  }
  for (std::uint64_t peerId : reap) {
    sessions_.at(peerId)->stats.reaps += 1;
    retireSession(peerId);
    BBA_COUNTER_ADD("session.reaped", 1);
  }

  frames_ += 1;
  BBA_COUNTER_ADD("service.frames", 1);
  BBA_COUNTER_ADD("service.inputs", n);
  for (const Admission& adm : admission) {
    if (adm.shed) {
      // Once per frame: the budget was insufficient for the admitted set.
      BBA_COUNTER_ADD("service.budget_exhausted", 1);
      break;
    }
  }
  return results;
}

map::InsertResult CooperationService::recordEgoKeyframe(
    const CarPerceptionData& ego, const Pose2& egoGlobalPose) {
  if (mapStore_ == nullptr) return {};
  const int egoExpected = cfg_.tracker.aligner.bev.imageSize();
  if (ego.bvImage.width() != egoExpected ||
      ego.bvImage.height() != egoExpected) {
    return {};
  }
  // Same cache key processFrame() uses for this frame, so whichever of
  // the two runs first pays the one ego pipeline and the other reuses it.
  const std::shared_ptr<const EgoFeatures> feats = egoCache_.features(
      static_cast<std::uint64_t>(frames_), featureAligner_, ego);
  if (!feats || feats->descriptors.empty()) return {};
  return mapStore_->insert(egoGlobalPose, feats->descriptors, ego);
}

ServiceReport CooperationService::report() const {
  ServiceReport rep;
  rep.framesProcessed = frames_;
  rep.rejectedFull = rejectedFull_;
  rep.sessions.reserve(sessions_.size() + retired_.size());
  double confidenceSum = 0.0;
  const auto addRow = [&](const SessionStats& st) {
    rep.sessions.push_back(st);
    rep.aggregate.frames += st.frames;
    rep.aggregate.linkDrops += st.linkDrops;
    rep.aggregate.decodeOk += st.decodeOk;
    rep.aggregate.decodeFailed += st.decodeFailed;
    rep.aggregate.payloadMismatch += st.payloadMismatch;
    rep.aggregate.bytesReceived += st.bytesReceived;
    for (std::size_t i = 0; i < st.rejectByCause.size(); ++i)
      rep.aggregate.rejectByCause[i] += st.rejectByCause[i];
    for (std::size_t i = 0; i < st.outcomes.size(); ++i)
      rep.aggregate.outcomes[i] += st.outcomes[i];
    rep.aggregate.posesReported += st.posesReported;
    rep.aggregate.pregateSkips += st.pregateSkips;
    rep.aggregate.shedFrames += st.shedFrames;
    rep.aggregate.recoverSlots += st.recoverSlots;
    rep.aggregate.silentFrames += st.silentFrames;
    rep.aggregate.duplicateRejects += st.duplicateRejects;
    rep.aggregate.evictions += st.evictions;
    rep.aggregate.reaps += st.reaps;
    rep.aggregate.readmissions += st.readmissions;
    rep.aggregate.suspicion += st.suspicion;
    rep.aggregate.quarantines += st.quarantines;
    rep.aggregate.quarantinedFrames += st.quarantinedFrames;
    rep.aggregate.replayRejects += st.replayRejects;
    rep.aggregate.validationRejects += st.validationRejects;
    rep.aggregate.gateRejects += st.gateRejects;
    rep.aggregate.consistencyOutliers += st.consistencyOutliers;
    for (std::size_t a = 0; a < st.healthTransitions.size(); ++a)
      for (std::size_t b = 0; b < st.healthTransitions[a].size(); ++b)
        rep.aggregate.healthTransitions[a][b] += st.healthTransitions[a][b];
    confidenceSum += st.lastConfidence;
  };
  // Live rows first, then the retired archive — each id-ordered, so the
  // report (and its JSON) is byte-identical across runs and thread counts.
  for (const auto& [peerId, session] : sessions_) addRow(session->stats);
  for (const auto& [peerId, r] : retired_) addRow(r.stats);
  if (!rep.sessions.empty())
    rep.aggregate.lastConfidence =
        confidenceSum / static_cast<double>(rep.sessions.size());
  return rep;
}

}  // namespace bba::service
