#include "service/cooperation_service.hpp"

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bba::service {

namespace {

/// Decorrelated per-session RNG stream: the same (seed, peerId) always
/// yields the same stream, and distinct peers never share one (same
/// mixing discipline as dataset/fault.cpp's frameRng).
std::uint64_t sessionSeed(std::uint64_t serviceSeed, std::uint64_t peerId) {
  return serviceSeed ^ (peerId * 0x9E3779B97F4A7C15ULL) ^
         0xC2B2AE3D27D4EB4FULL;
}

void appendStatsJson(std::string& out, const SessionStats& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"peer\":%llu,\"frames\":%d,\"link_drops\":%d,\"decode_ok\":%d,"
      "\"decode_failed\":%d,\"payload_mismatch\":%d,\"bytes_received\":%lld,"
      "\"poses_reported\":%d,\"last_confidence\":%.6f",
      static_cast<unsigned long long>(s.peerId), s.frames, s.linkDrops,
      s.decodeOk, s.decodeFailed, s.payloadMismatch,
      static_cast<long long>(s.bytesReceived), s.posesReported,
      s.lastConfidence);
  out += buf;
  out += ",\"reject_by_cause\":{";
  bool first = true;
  for (int i = 1; i < wire::kDecodeErrorCount; ++i) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof buf, "\"%s\":%d",
                  wire::toString(static_cast<wire::DecodeError>(i)),
                  s.rejectByCause[static_cast<std::size_t>(i)]);
    out += buf;
  }
  out += "},\"outcomes\":{";
  for (int i = 0; i < kTrackerOutcomeCount; ++i) {
    if (i > 0) out += ',';
    std::snprintf(buf, sizeof buf, "\"%s\":%d",
                  toString(static_cast<TrackerOutcome>(i)),
                  s.outcomes[static_cast<std::size_t>(i)]);
    out += buf;
  }
  out += "}}";
}

}  // namespace

std::string ServiceReport::toJson() const {
  std::string out;
  out.reserve(512 + sessions.size() * 512);
  char buf[64];
  std::snprintf(buf, sizeof buf, "{\"frames\":%d,\"sessions\":[",
                framesProcessed);
  out += buf;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    if (i > 0) out += ',';
    appendStatsJson(out, sessions[i]);
  }
  out += "],\"aggregate\":";
  appendStatsJson(out, aggregate);
  out += "}";
  return out;
}

wire::CooperativeMessage toMessage(const CarPerceptionData& data,
                                   std::uint64_t senderId,
                                   std::uint32_t frameIndex,
                                   std::int64_t captureTimeMicros) {
  wire::CooperativeMessage msg;
  msg.senderId = senderId;
  msg.frameIndex = frameIndex;
  msg.captureTimeMicros = captureTimeMicros;
  msg.bvImage = data.bvImage;
  msg.boxes = data.boxes;
  return msg;
}

CarPerceptionData toCarData(const wire::CooperativeMessage& msg) {
  return CarPerceptionData{msg.bvImage, msg.boxes};
}

struct CooperationService::Session {
  Session(std::uint64_t id, const ServiceConfig& cfg)
      : peerId(id), tracker(cfg.tracker),
        rng(sessionSeed(cfg.seed, id)) {
    stats.peerId = id;
  }

  std::uint64_t peerId;
  PoseTracker tracker;
  Rng rng;
  SessionStats stats;
};

CooperationService::CooperationService(ServiceConfig config)
    : cfg_(std::move(config)) {
  BBA_ASSERT_MSG(cfg_.maxSessions >= 1, "maxSessions must be >= 1");
}

CooperationService::~CooperationService() = default;

CooperationService::Session& CooperationService::sessionFor(
    std::uint64_t peerId) {
  auto it = sessions_.find(peerId);
  if (it == sessions_.end()) {
    BBA_ASSERT_MSG(static_cast<int>(sessions_.size()) < cfg_.maxSessions,
                   "session table full (ServiceConfig::maxSessions)");
    it = sessions_
             .emplace(peerId, std::make_unique<Session>(peerId, cfg_))
             .first;
    BBA_COUNTER_ADD("service.sessions_created", 1);
    BBA_GAUGE_SET("service.sessions", static_cast<double>(sessions_.size()));
  }
  return *it->second;
}

std::vector<std::uint8_t> CooperationService::sendFrame(
    const CarPerceptionData& data, std::uint64_t senderId,
    std::uint32_t frameIndex, wire::EncodeStats* stats) const {
  return wire::encode(toMessage(data, senderId, frameIndex), cfg_.wire,
                      stats);
}

std::vector<SessionFrameResult> CooperationService::processFrame(
    const CarPerceptionData& ego,
    const std::vector<PeerFrameInput>& inputs) {
  BBA_SPAN("service.processFrame");
  const std::int64_t n = static_cast<std::int64_t>(inputs.size());
  {
    std::unordered_set<std::uint64_t> ids;
    for (const PeerFrameInput& in : inputs) {
      BBA_ASSERT_MSG(ids.insert(in.peerId).second,
                     "duplicate peerId within one processFrame call");
    }
  }

  // Session creation is serial; the parallel region below only ever
  // touches sessions that already exist.
  std::vector<Session*> bySlot(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    bySlot[i] = &sessionFor(inputs[i].peerId);

  // Cross-session parallel, per-session serial: every input owns its
  // session exclusively (ids are distinct), so chunk grain 1 gives one
  // independent task per session and results are byte-identical at any
  // thread count.
  std::vector<SessionFrameResult> results(inputs.size());
  parallelFor(0, n, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const PeerFrameInput& in = inputs[static_cast<std::size_t>(i)];
      Session& session = *bySlot[static_cast<std::size_t>(i)];
      SessionFrameResult& res = results[static_cast<std::size_t>(i)];
      res.peerId = in.peerId;
      if (in.payload == nullptr) {
        res.track = session.tracker.coast(&res.report);
        continue;
      }
      res.received = true;
      res.payloadBytes = in.payload->size();
      wire::DecodeResult decoded = wire::decode(*in.payload);
      res.decodeError = decoded.error;
      if (decoded.error != wire::DecodeError::None) {
        // Corrupt traffic degrades to a dropped frame: the tracker's
        // ladder absorbs it exactly like a link drop.
        res.track = session.tracker.coast(&res.report);
        continue;
      }
      const wire::CooperativeMessage& msg = decoded.message;
      const int expected = cfg_.tracker.aligner.bev.imageSize();
      if (msg.bvImage.empty() || msg.bvImage.width() != expected ||
          msg.bvImage.height() != expected) {
        res.payloadMismatch = true;
        res.track = session.tracker.coast(&res.report);
        continue;
      }
      if (cfg_.usePosePriors && msg.hasPosePrior &&
          !session.tracker.hasTrack()) {
        session.tracker.acceptExternalPose(msg.posePrior);
      }
      res.track = session.tracker.update(toCarData(msg), ego, session.rng,
                                         &res.report);
    }
  });

  // Deterministic merge: stats and service.* metrics update in
  // session-id order, never in completion order.
  std::unordered_map<std::uint64_t, std::size_t> slotOf;
  slotOf.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    slotOf.emplace(inputs[i].peerId, i);
  for (auto& [peerId, session] : sessions_) {
    auto found = slotOf.find(peerId);
    if (found == slotOf.end()) continue;  // peer absent this frame
    const SessionFrameResult& res = results[found->second];
    SessionStats& st = session->stats;
    st.frames += 1;
    st.outcomes[static_cast<std::size_t>(res.track.outcome)] += 1;
    st.lastConfidence = res.track.confidence;
    if (!res.received) {
      st.linkDrops += 1;
      BBA_COUNTER_ADD("service.link_drops", 1);
    } else if (res.decodeError != wire::DecodeError::None) {
      st.decodeFailed += 1;
      st.rejectByCause[static_cast<std::size_t>(res.decodeError)] += 1;
      BBA_COUNTER_ADD("service.decode_failed", 1);
    } else {
      st.decodeOk += 1;
      st.bytesReceived += static_cast<std::int64_t>(res.payloadBytes);
      if (res.payloadMismatch) {
        st.payloadMismatch += 1;
        BBA_COUNTER_ADD("service.payload_mismatch", 1);
      }
    }
    if (res.track.poseValid) {
      st.posesReported += 1;
      BBA_COUNTER_ADD("service.poses_reported", 1);
    }
  }
  frames_ += 1;
  BBA_COUNTER_ADD("service.frames", 1);
  BBA_COUNTER_ADD("service.inputs", n);
  return results;
}

ServiceReport CooperationService::report() const {
  ServiceReport rep;
  rep.framesProcessed = frames_;
  rep.sessions.reserve(sessions_.size());
  double confidenceSum = 0.0;
  for (const auto& [peerId, session] : sessions_) {
    const SessionStats& st = session->stats;
    rep.sessions.push_back(st);
    rep.aggregate.frames += st.frames;
    rep.aggregate.linkDrops += st.linkDrops;
    rep.aggregate.decodeOk += st.decodeOk;
    rep.aggregate.decodeFailed += st.decodeFailed;
    rep.aggregate.payloadMismatch += st.payloadMismatch;
    rep.aggregate.bytesReceived += st.bytesReceived;
    for (std::size_t i = 0; i < st.rejectByCause.size(); ++i)
      rep.aggregate.rejectByCause[i] += st.rejectByCause[i];
    for (std::size_t i = 0; i < st.outcomes.size(); ++i)
      rep.aggregate.outcomes[i] += st.outcomes[i];
    rep.aggregate.posesReported += st.posesReported;
    confidenceSum += st.lastConfidence;
  }
  if (!rep.sessions.empty())
    rep.aggregate.lastConfidence =
        confidenceSum / static_cast<double>(rep.sessions.size());
  return rep;
}

}  // namespace bba::service
