#include "service/session_lifecycle.hpp"

#include <algorithm>

namespace bba::service {

const char* toString(SessionAdmission a) {
  switch (a) {
    case SessionAdmission::Existing:
      return "existing";
    case SessionAdmission::Admitted:
      return "admitted";
    case SessionAdmission::AdmittedEvicting:
      return "admitted_evicting";
    case SessionAdmission::RejectedFull:
      return "rejected_full";
    case SessionAdmission::RejectedDuplicate:
      return "rejected_duplicate";
  }
  return "unknown";
}

namespace {

double healthTerm(PeerHealth h, const LifecycleConfig& cfg) {
  switch (h) {
    case PeerHealth::Quarantined:
      return cfg.weightQuarantined;
    case PeerHealth::Suspect:
      return cfg.weightSuspect;
    case PeerHealth::Probing:
      return cfg.weightProbing;
    case PeerHealth::Healthy:
      return 0.0;
  }
  return 0.0;
}

}  // namespace

double evictionScore(const EvictionCandidate& c, const LifecycleConfig& cfg) {
  const double conf = std::clamp(c.lastConfidence, 0.0, 1.0);
  const int stale =
      std::min(std::max(c.lockStaleFrames, 0), cfg.lockStalenessCapFrames);
  double score = healthTerm(c.health, cfg);
  score += cfg.weightSilentFrame * static_cast<double>(std::max(c.silentRunFrames, 0));
  score += cfg.weightLockStaleFrame * static_cast<double>(stale);
  if (!c.hasTrack) score += cfg.weightNoTrack;
  score += cfg.weightLowConfidence * (1.0 - conf);
  return score;
}

std::optional<std::uint64_t> pickEvictionVictim(
    const std::vector<EvictionCandidate>& candidates,
    const LifecycleConfig& cfg) {
  std::optional<std::uint64_t> best;
  double bestScore = 0.0;
  for (const auto& c : candidates) {
    const double s = evictionScore(c, cfg);
    if (s < cfg.minEvictionScore) continue;
    // Strict total order: score desc, peerId asc — input order never
    // changes the pick.
    if (!best || s > bestScore || (s == bestScore && c.peerId < *best)) {
      best = c.peerId;
      bestScore = s;
    }
  }
  return best;
}

}  // namespace bba::service
