#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/pose2.hpp"

namespace bba::service {

/// Spatial pre-gate (fleet-scale admission stage 1): decide from a peer's
/// *claimed* relative pose alone — before the full payload is decoded —
/// whether its BV footprint can plausibly overlap the ego footprint. A
/// claim outside the gate cannot produce a BB-Align lock (no shared
/// geometry to match), so the session is held on a cheap
/// "tracked-but-not-aligned" rung instead of burning a full recover().
///
/// The gate is a pure function of the claimed poses and the BV range:
/// deterministic, thread-free, and trivially byte-identical at any
/// BBA_THREADS (asserted by tests/admission_test.cpp). Claims only ever
/// REMOVE work — a spoofed claim can waste one recover() slot or skip the
/// spoofer's own session, but never seeds a track or touches other peers.
struct PreGateConfig {
  /// Run the pre-gate at all. Peers whose messages carry no pose-prior
  /// claim are always admitted (there is nothing to gate on).
  bool enable = true;
  /// Hard range cap on the claimed translation (meters). Beyond ~2x the
  /// BV range two 256x256 footprints share no pixels; the default leaves
  /// margin for claim error.
  double maxPairingRangeM = 150.0;
  /// Minimum fraction of the ego BV footprint area that the claimed peer
  /// footprint must cover for alignment to be attemptable.
  double minOverlapFrac = 0.02;
  /// Once a session has a locked track, gate on the tracker's OWN
  /// dead-reckoned prediction (PoseTracker::predictNext) instead of the
  /// sender's claim: the service's own state cannot be spoofed, so a lying
  /// claim can no longer keep an in-range, already-locked peer held.
  /// Claim-based gating still applies while a session bootstraps (there is
  /// no own-state yet) — a bootstrapping far-claim peer stays cheap.
  bool useTrackPrior = true;
};

/// Fraction of the ego BV footprint (a square of side 2*bvRangeM centered
/// on the ego) covered by the claimed peer footprint (the same square
/// transformed by `claimedOtherToEgo`). Exact convex clipping; in [0, 1].
[[nodiscard]] double bvFootprintOverlap(const Pose2& claimedOtherToEgo,
                                        double bvRangeM);

/// The pre-gate decision: true when the claim passes both the range cap
/// and the footprint-overlap floor (or the gate is disabled).
[[nodiscard]] bool preGateAdmits(const Pose2& claimedOtherToEgo,
                                 double bvRangeM, const PreGateConfig& cfg);

/// Per-frame work budget (fleet-scale admission stage 2): how many full
/// recover() attempts one processFrame() may spend. Sessions beyond the
/// budget are shed — they coast on the tracker ladder this frame and move
/// to the front of the line next frame (see grantRecoverSlots).
///
/// The frame deadline is honored through a static cost model
/// (`assumedRecoverCostMs`), never a mid-frame wall clock: a wall clock
/// would make the schedule depend on machine load and break the
/// byte-identical-results contract. The benchmark (bench/fleet_scale.cpp)
/// measures the realized latency the model stands in for.
struct BudgetConfig {
  /// Hard cap on recover() attempts per frame (0 = unlimited).
  int maxRecoversPerFrame = 0;
  /// Frame deadline in milliseconds (0 = unlimited), converted to a slot
  /// count via assumedRecoverCostMs. When both caps are set the stricter
  /// one wins.
  double frameDeadlineMs = 0.0;
  /// Deterministic cost model: assumed cost of one admitted session
  /// (decode + recover) used to convert frameDeadlineMs into slots.
  double assumedRecoverCostMs = 200.0;
};

/// Effective recover slots per frame: min of the two caps, 0 = unlimited.
[[nodiscard]] int effectiveRecoverBudget(const BudgetConfig& cfg);

/// One admitted session competing for a recover slot this frame.
struct SlotCandidate {
  std::uint64_t peerId = 0;
  /// Frames since this session was last *granted* a slot (not since its
  /// last lock): resetting on grant — win or lose — is what makes the
  /// rotation starvation-free even for peers that never lock.
  int staleness = 0;
  /// Caller-side index of the candidate (returned for granted slots).
  std::size_t slot = 0;
};

/// Deterministic slot assignment: sort by (staleness desc, peerId asc) and
/// grant the first `budget` candidates (budget <= 0 grants everyone).
/// Returns the granted candidates' `slot` values in grant order. With
/// every ungranted session's staleness incrementing each frame, the
/// rotation is starvation-free: no session waits more than
/// ceil(S / budget) frames for a slot (asserted by
/// tests/admission_test.cpp).
[[nodiscard]] std::vector<std::size_t> grantRecoverSlots(
    std::vector<SlotCandidate> candidates, int budget);

}  // namespace bba::service
