#include "common/rng.hpp"

#include <numbers>

namespace bba {

double Rng::angle() {
  return uniform(-std::numbers::pi, std::numbers::pi);
}

Rng Rng::fork() {
  // Draw two words from the parent to seed the child; this advances the
  // parent so successive forks are independent.
  const std::uint64_t a = engine_();
  const std::uint64_t b = engine_();
  return Rng(a ^ (b << 1) ^ 0x9E3779B97F4A7C15ULL);
}

}  // namespace bba
