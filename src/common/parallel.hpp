#pragma once

#include <cstdint>
#include <functional>

namespace bba {

/// Deterministic work-sharing parallel runtime.
///
/// The contract that makes parallel BB-Align reproducible: `parallelFor`
/// splits a range into chunks whose boundaries depend ONLY on the grain
/// size — never on the thread count — so callers that keep one partial
/// result per chunk and combine them in chunk order obtain bit-identical
/// results at any thread count (including 1). See DESIGN.md,
/// "Determinism contract for parallel execution".

/// Maximum number of threads a `parallelFor` call may use on the calling
/// thread: the innermost active `ThreadLimit` if one is in scope, else the
/// `BBA_THREADS` environment variable (clamped to >= 1), else
/// `std::thread::hardware_concurrency()`. `BBA_THREADS=1` forces fully
/// inline (serial) execution with zero pool involvement.
[[nodiscard]] int maxThreads();

/// Scoped thread-count override for the current thread. Nestable; the
/// innermost limit wins. `ThreadLimit(1)` makes every `parallelFor` in
/// scope run inline on the caller.
class ThreadLimit {
 public:
  explicit ThreadLimit(int n);
  ~ThreadLimit();
  ThreadLimit(const ThreadLimit&) = delete;
  ThreadLimit& operator=(const ThreadLimit&) = delete;

 private:
  int saved_;
};

/// Number of chunks `parallelFor(begin, end, grain, ...)` produces. Use it
/// to size per-chunk partial-result arrays for deterministic reductions.
[[nodiscard]] std::int64_t chunkCount(std::int64_t begin, std::int64_t end,
                                      std::int64_t grain);

/// Run `fn(chunkBegin, chunkEnd)` over [begin, end) split into chunks of
/// `grain` indices (the last chunk may be short). Chunks are dynamically
/// work-shared across up to `maxThreads()` threads (a lazily created
/// global pool; the caller participates). Guarantees:
///  - chunk boundaries are a pure function of (begin, end, grain);
///  - a nested call from inside a worker runs inline (no deadlock, no
///    oversubscription);
///  - the first exception thrown by any chunk is rethrown on the caller
///    after all in-flight chunks drain (remaining chunks are skipped).
void parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace bba
