#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bba {

/// Minimal ASCII table used by the bench binaries to print the paper's
/// tables/figure series in a readable, diff-friendly format.
///
/// Usage:
///   Table t({"Method", "Overall", "0-30m"});
///   t.addRow({"Early Fusion", "21.2/8.9", "34.4/14.8"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void addRow(std::vector<std::string> cells);

  /// Pretty-print with column alignment and a header separator.
  void print(std::ostream& os) const;

  /// Emit as CSV (no escaping of embedded commas — callers use plain cells).
  void printCsv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for table cells).
std::string fmt(double v, int precision = 2);

}  // namespace bba
