#include "common/pgm.hpp"

#include <algorithm>
#include <fstream>
#include <vector>

#include "common/assert.hpp"

namespace bba {

namespace {
void writeHeaderAndData(const std::string& path, int w, int h,
                        const std::vector<unsigned char>& bytes) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw ComputationError("writePgm: cannot open " + path);
  os << "P5\n" << w << " " << h << "\n255\n";
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  if (!os) throw ComputationError("writePgm: write failed for " + path);
}
}  // namespace

void writePgm(const ImageF& img, const std::string& path, float maxValue) {
  BBA_ASSERT(!img.empty());
  float scale = maxValue;
  if (scale <= 0.0f) scale = std::max(img.maxValue(), 1e-12f);
  std::vector<unsigned char> bytes;
  bytes.reserve(img.size());
  for (const float v : img.data()) {
    const float n = std::clamp(v / scale, 0.0f, 1.0f);
    bytes.push_back(static_cast<unsigned char>(n * 255.0f + 0.5f));
  }
  writeHeaderAndData(path, img.width(), img.height(), bytes);
}

void writeIndexPgm(const ImageU8& img, int indexCount,
                   const std::string& path) {
  BBA_ASSERT(!img.empty());
  BBA_ASSERT(indexCount >= 1);
  std::vector<unsigned char> bytes;
  bytes.reserve(img.size());
  for (const unsigned char v : img.data()) {
    bytes.push_back(static_cast<unsigned char>(
        std::min(255, v * 255 / std::max(indexCount - 1, 1))));
  }
  writeHeaderAndData(path, img.width(), img.height(), bytes);
}

}  // namespace bba
