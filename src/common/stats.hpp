#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace bba {

/// Mean of a sample; 0 for an empty sample.
double mean(std::span<const double> xs);

/// Unbiased sample standard deviation; 0 for n < 2.
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Throws on empty input.
double percentile(std::span<const double> xs, double p);

/// Empirical cumulative distribution function over a sample.
///
/// Built once from a set of observations; `fractionBelow(x)` then answers
/// "what fraction of observations are <= x" — the quantity plotted on the
/// y-axis of the paper's CDF figures (Figs. 7, 9, 10, 11, 12, 13).
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  /// Fraction of samples <= x, in [0, 1]. 0 for an empty CDF.
  [[nodiscard]] double fractionBelow(double x) const;

  /// Value at the given quantile q in [0,1]. Throws on empty CDF.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] bool empty() const { return sorted_.empty(); }
  [[nodiscard]] const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Five-number summary used by the paper's box plots
/// (10th/25th/50th/75th/90th percentiles, Fig. 8).
struct BoxStats {
  double p10 = 0, p25 = 0, p50 = 0, p75 = 0, p90 = 0;
  std::size_t n = 0;
};

/// Compute the paper's box-plot summary for a sample. Throws on empty input.
BoxStats boxStats(std::span<const double> xs);

/// Render a BoxStats line like "p10=0.12 p25=0.30 ... (n=120)".
std::string toString(const BoxStats& b);

}  // namespace bba
