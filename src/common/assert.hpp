#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bba {

/// Error thrown when a precondition or internal invariant is violated.
/// Carries the failing expression and source location in its message.
class AssertionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Error thrown when an algorithm cannot produce a result for the given
/// input (e.g. RANSAC with fewer correspondences than the minimal set).
class ComputationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void assertFail(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "BBA_ASSERT failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw AssertionError(os.str());
}
}  // namespace detail

}  // namespace bba

/// Precondition / invariant check. Always on (cheap checks only); throws
/// bba::AssertionError so tests can verify contract violations.
#define BBA_ASSERT(expr)                                              \
  do {                                                                \
    if (!(expr)) ::bba::detail::assertFail(#expr, __FILE__, __LINE__, \
                                           std::string{});            \
  } while (false)

/// BBA_ASSERT with an explanatory message (streamable not supported; pass
/// a std::string or string literal).
#define BBA_ASSERT_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) ::bba::detail::assertFail(#expr, __FILE__, __LINE__, \
                                           (msg));                    \
  } while (false)
