#pragma once

#include <cstdint>
#include <random>

namespace bba {

/// Deterministic random number generator used throughout the library.
///
/// Every stochastic component (world generation, sensor noise, detector
/// noise, RANSAC sampling) takes an explicit Rng so experiments are
/// reproducible from a single seed. Wraps std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xB0A11CEULL) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int uniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    if (stddev <= 0.0) return mean;
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniform angle in [-pi, pi).
  double angle();

  /// Derive an independent child generator (for parallel or per-frame
  /// streams that must not perturb the parent sequence).
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Stateless counter-based RNG substream (SplitMix64 over a hashed
/// (seed, counter) pair).
///
/// Iteration `i` of a parallel loop constructs `CounterRng(seed, i)` and
/// draws from its own stream, so the values it sees are a pure function of
/// (seed, i) — independent of execution order, chunking, and thread count.
/// This is what makes parallel RANSAC select the same model at any
/// `BBA_THREADS` (see DESIGN.md, "Determinism contract").
class CounterRng {
 public:
  CounterRng(std::uint64_t seed, std::uint64_t counter) {
    // Scramble (seed, counter) through the SplitMix64 finalizer so the
    // starting states of adjacent counters land far apart. Seeding
    // affinely (state = seed + counter * gamma) would make stream `it`
    // and stream `it+1` overlap shifted by one draw — correlated
    // minimal samples, weaker RANSAC coverage.
    std::uint64_t z = seed + counter * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    state_ = z ^ (z >> 31);
  }

  /// Next 64 pseudo-random bits (SplitMix64 step).
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive). The modulo bias is
  /// negligible for the small ranges RANSAC draws (indices of a few
  /// thousand correspondences against a 64-bit stream).
  int uniformInt(int lo, int hi) {
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next() % range);
  }

 private:
  std::uint64_t state_;
};

}  // namespace bba
