#pragma once

#include <cstdint>
#include <random>

namespace bba {

/// Deterministic random number generator used throughout the library.
///
/// Every stochastic component (world generation, sensor noise, detector
/// noise, RANSAC sampling) takes an explicit Rng so experiments are
/// reproducible from a single seed. Wraps std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xB0A11CEULL) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int uniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    if (stddev <= 0.0) return mean;
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniform angle in [-pi, pi).
  double angle();

  /// Derive an independent child generator (for parallel or per-frame
  /// streams that must not perturb the parent sequence).
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace bba
