#pragma once

#include <string>

#include "signal/image.hpp"

namespace bba {

/// Write a float image as an 8-bit binary PGM (P5), scaling [0, maxValue]
/// to [0, 255]. maxValue <= 0 auto-scales to the image maximum. Throws
/// ComputationError on I/O failure. The standard way to eyeball BV images,
/// MIMs and amplitude maps (any image viewer opens PGM).
void writePgm(const ImageF& img, const std::string& path,
              float maxValue = 0.0f);

/// Write an index image (e.g. a MIM) as a PGM, mapping indices 0..indexCount-1
/// across the gray range.
void writeIndexPgm(const ImageU8& img, int indexCount,
                   const std::string& path);

}  // namespace bba
