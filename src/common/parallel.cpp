#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/assert.hpp"

#if defined(BBA_OBSERVABILITY_ENABLED)
#include "obs/trace.hpp"
#endif

namespace bba {

namespace {

/// Innermost ThreadLimit override for this thread (0 = none).
thread_local int tlsThreadLimit = 0;

/// True while this thread is executing chunks of some parallelFor — both
/// pool workers and the calling thread set it, so nested calls run inline.
thread_local bool tlsInParallelRegion = false;

int envOrHardwareThreads() {
  // Read on every call (not cached) so tests and embedders can change
  // BBA_THREADS between top-level parallel regions.
  if (const char* env = std::getenv("BBA_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// One in-flight parallelFor. Chunks are pulled from `next` by the caller
/// and by however many pool workers claim a slot; `slots` caps worker
/// participation so a ThreadLimit below the pool size is honored.
struct Job {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t grain = 1;
  std::int64_t numChunks = 0;
  const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
  std::atomic<std::int64_t> next{0};
  std::atomic<int> slots{0};
  std::atomic<int> running{0};
  std::atomic<bool> failed{false};
  std::mutex errorMutex;
  std::exception_ptr error;
#if defined(BBA_OBSERVABILITY_ENABLED)
  /// Span context of the launching thread; workers adopt it so spans
  /// opened inside chunks nest under the parallel region in the trace.
  obs::ParallelContext obsCtx;
#endif

  void process() {
    tlsInParallelRegion = true;
    for (;;) {
      const std::int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= numChunks) break;
      if (failed.load(std::memory_order_relaxed)) break;
      const std::int64_t b = begin + c * grain;
      const std::int64_t e = std::min(end, b + grain);
      try {
        (*fn)(b, e);
      } catch (...) {
        std::lock_guard<std::mutex> lk(errorMutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
    tlsInParallelRegion = false;
  }
};

/// Lazily grown global worker pool. Workers sleep until a job is
/// published; one job runs at a time (nested calls never reach the pool).
class Pool {
 public:
  static Pool& instance() {
    static Pool* pool = new Pool();  // leaked: workers may outlive statics
    return *pool;
  }

  void run(Job& job, int extraWorkers) {
    std::lock_guard<std::mutex> jobLock(jobMutex_);
    ensureWorkers(extraWorkers);
    job.slots.store(extraWorkers, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(m_);
      current_ = &job;
      ++jobId_;
    }
    cv_.notify_all();
    job.process();  // the caller is always a participant
    std::unique_lock<std::mutex> lk(m_);
    done_.wait(lk, [&] { return job.running.load() == 0; });
    current_ = nullptr;
  }

 private:
  Pool() = default;

  void ensureWorkers(int n) {
    // Pool growth is bounded: timeslicing beyond this buys nothing.
    constexpr int kMaxWorkers = 64;
    n = std::min(n, kMaxWorkers);
    while (static_cast<int>(workers_.size()) < n) {
      workers_.emplace_back([this] { workerLoop(); });
    }
  }

  void workerLoop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
      cv_.wait(lk, [&] { return jobId_ != seen; });
      seen = jobId_;
      Job* job = current_;
      if (!job) continue;
      if (job->slots.fetch_sub(1, std::memory_order_relaxed) <= 0) {
        job->slots.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      job->running.fetch_add(1, std::memory_order_relaxed);
      lk.unlock();
#if defined(BBA_OBSERVABILITY_ENABLED)
      {
        obs::WorkerScope obsScope(job->obsCtx);
        job->process();
      }
#else
      job->process();
#endif
      lk.lock();
      if (job->running.fetch_sub(1, std::memory_order_relaxed) == 1) {
        done_.notify_all();
      }
    }
  }

  std::mutex jobMutex_;  // serializes top-level parallel regions
  std::mutex m_;
  std::condition_variable cv_;
  std::condition_variable done_;
  std::vector<std::thread> workers_;
  Job* current_ = nullptr;
  std::uint64_t jobId_ = 0;
};

}  // namespace

int maxThreads() {
  if (tlsThreadLimit > 0) return tlsThreadLimit;
  return envOrHardwareThreads();
}

ThreadLimit::ThreadLimit(int n) : saved_(tlsThreadLimit) {
  BBA_ASSERT_MSG(n >= 1, "ThreadLimit requires n >= 1");
  tlsThreadLimit = n;
}

ThreadLimit::~ThreadLimit() { tlsThreadLimit = saved_; }

std::int64_t chunkCount(std::int64_t begin, std::int64_t end,
                        std::int64_t grain) {
  BBA_ASSERT(grain >= 1);
  if (end <= begin) return 0;
  return (end - begin + grain - 1) / grain;
}

void parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn) {
  const std::int64_t chunks = chunkCount(begin, end, grain);
  if (chunks == 0) return;

  const int threads = maxThreads();
  if (threads <= 1 || chunks == 1 || tlsInParallelRegion) {
    // Inline path: same chunk boundaries, same order, no pool. Also taken
    // for nested calls so inner loops of an already-parallel region stay
    // serial instead of deadlocking or oversubscribing.
    const bool nested = tlsInParallelRegion;
    tlsInParallelRegion = true;
    try {
      for (std::int64_t c = 0; c < chunks; ++c) {
        const std::int64_t b = begin + c * grain;
        fn(b, std::min(end, b + grain));
      }
    } catch (...) {
      tlsInParallelRegion = nested;
      throw;
    }
    tlsInParallelRegion = nested;
    return;
  }

  Job job;
  job.begin = begin;
  job.end = end;
  job.grain = grain;
  job.numChunks = chunks;
  job.fn = &fn;
#if defined(BBA_OBSERVABILITY_ENABLED)
  job.obsCtx = obs::captureParallelContext();
#endif
  const int extra =
      static_cast<int>(std::min<std::int64_t>(threads - 1, chunks - 1));
  Pool::instance().run(job, extra);
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace bba
