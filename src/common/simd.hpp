#pragma once

namespace bba {

/// Instruction-set level the vectorized kernels dispatch to at runtime.
/// Every kernel keeps a scalar reference implementation and guarantees
/// bit-identical results at every level (see DESIGN.md, "SIMD
/// determinism"): lanes only ever carry per-element-independent work, and
/// reductions use one fixed virtual-lane order shared by all paths.
enum class SimdLevel {
  Scalar = 0,  ///< reference implementation, no vector intrinsics
  Sse2 = 1,    ///< 128-bit lanes (baseline on x86-64)
  Avx2 = 2,    ///< 256-bit lanes
};

[[nodiscard]] const char* toString(SimdLevel level);

/// Highest level the host CPU supports (Scalar on non-x86 builds).
[[nodiscard]] SimdLevel maxSupportedSimdLevel();

/// The level kernels dispatch to. Defaults to maxSupportedSimdLevel();
/// the BBA_SIMD environment variable ("scalar", "sse2", "avx2") lowers it,
/// and setSimdLevel() overrides it from code (tests sweep all levels).
/// Requests above hardware support clamp down to it.
[[nodiscard]] SimdLevel simdLevel();

/// Override the dispatch level (clamped to hardware support). Not intended
/// for concurrent use with running kernels: call between pipeline runs.
void setSimdLevel(SimdLevel level);

}  // namespace bba
