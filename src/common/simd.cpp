#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace bba {

namespace {

#if defined(__x86_64__) || defined(__i386__)
SimdLevel detectLevel() {
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return SimdLevel::Avx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::Sse2;
  return SimdLevel::Scalar;
}
#else
SimdLevel detectLevel() { return SimdLevel::Scalar; }
#endif

SimdLevel initialLevel() {
  SimdLevel level = detectLevel();
  if (const char* env = std::getenv("BBA_SIMD")) {
    SimdLevel requested = level;
    if (std::strcmp(env, "scalar") == 0) requested = SimdLevel::Scalar;
    else if (std::strcmp(env, "sse2") == 0) requested = SimdLevel::Sse2;
    else if (std::strcmp(env, "avx2") == 0) requested = SimdLevel::Avx2;
    if (static_cast<int>(requested) < static_cast<int>(level))
      level = requested;
  }
  return level;
}

std::atomic<SimdLevel>& currentLevel() {
  static std::atomic<SimdLevel> level{initialLevel()};
  return level;
}

}  // namespace

const char* toString(SimdLevel level) {
  switch (level) {
    case SimdLevel::Scalar:
      return "scalar";
    case SimdLevel::Sse2:
      return "sse2";
    case SimdLevel::Avx2:
      return "avx2";
  }
  return "?";
}

SimdLevel maxSupportedSimdLevel() {
  static const SimdLevel level = detectLevel();
  return level;
}

SimdLevel simdLevel() {
  return currentLevel().load(std::memory_order_relaxed);
}

void setSimdLevel(SimdLevel level) {
  const SimdLevel cap = maxSupportedSimdLevel();
  if (static_cast<int>(level) > static_cast<int>(cap)) level = cap;
  currentLevel().store(level, std::memory_order_relaxed);
}

}  // namespace bba
