#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace bba {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  BBA_ASSERT(!header_.empty());
}

void Table::addRow(std::vector<std::string> cells) {
  BBA_ASSERT_MSG(cells.size() == header_.size(),
                 "row arity must match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto printRow = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 < row.size() ? " | " : " |\n");
    }
  };
  printRow(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) printRow(row);
}

void Table::printCsv(std::ostream& os) const {
  const auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << row[c] << (c + 1 < row.size() ? "," : "\n");
  };
  printRow(header_);
  for (const auto& row : rows_) printRow(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace bba
