#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/assert.hpp"

namespace bba {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

namespace {
double interpSorted(const std::vector<double>& sorted, double p01) {
  BBA_ASSERT(!sorted.empty());
  if (sorted.size() == 1) return sorted.front();
  const double pos = p01 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}
}  // namespace

double percentile(std::span<const double> xs, double p) {
  BBA_ASSERT_MSG(!xs.empty(), "percentile of empty sample");
  BBA_ASSERT(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return interpSorted(sorted, p / 100.0);
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::fractionBelow(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::quantile(double q) const {
  BBA_ASSERT_MSG(!sorted_.empty(), "quantile of empty CDF");
  BBA_ASSERT(q >= 0.0 && q <= 1.0);
  return interpSorted(sorted_, q);
}

BoxStats boxStats(std::span<const double> xs) {
  BBA_ASSERT_MSG(!xs.empty(), "boxStats of empty sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  BoxStats b;
  b.p10 = interpSorted(sorted, 0.10);
  b.p25 = interpSorted(sorted, 0.25);
  b.p50 = interpSorted(sorted, 0.50);
  b.p75 = interpSorted(sorted, 0.75);
  b.p90 = interpSorted(sorted, 0.90);
  b.n = sorted.size();
  return b;
}

std::string toString(const BoxStats& b) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "p10=" << b.p10 << " p25=" << b.p25 << " p50=" << b.p50
     << " p75=" << b.p75 << " p90=" << b.p90 << " (n=" << b.n << ")";
  return os.str();
}

}  // namespace bba
