#include "stream/pose_tracker.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/assert.hpp"
#include "map/keyframe_store.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bba {

const char* toString(TrackerOutcome o) {
  switch (o) {
    case TrackerOutcome::Recovered:
      return "recovered";
    case TrackerOutcome::RecoveredRelaxed:
      return "recovered_relaxed";
    case TrackerOutcome::Extrapolated:
      return "extrapolated";
    case TrackerOutcome::TrackLost:
      return "track_lost";
    case TrackerOutcome::Bootstrapping:
      return "bootstrapping";
    case TrackerOutcome::Held:
      return "held";
    case TrackerOutcome::Relocalized:
      return "relocalized";
  }
  return "?";
}

BBAlignConfig relaxedRecoveryConfig(const BBAlignConfig& base) {
  BBAlignConfig c = base;
  // Wider matching: the true counterpart of a noisy or truncated payload
  // ranks lower among the candidates.
  c.matching.topK = base.matching.topK + 1;
  // Looser geometric consensus on both stages.
  c.ransacBv.inlierThreshold = base.ransacBv.inlierThreshold * 1.5;
  c.ransacBox.inlierThreshold = base.ransacBox.inlierThreshold * 1.5;
  c.ransacBox.minInliers = std::max(5, base.ransacBox.minInliers - 1);
  c.boxPairMaxCenterDistance = base.boxPairMaxCenterDistance * 1.5;
  // Lower success bars: behind the innovation gate, the motion prediction
  // supplies the trust these thresholds gave up.
  c.minOverlapScore = base.minOverlapScore * 0.75;
  c.successInliersBv = std::max(6, (base.successInliersBv * 2) / 3);
  c.successInliersBox = std::max(4, (base.successInliersBox * 2) / 3);
  return c;
}

Pose2 extrapolatePose(const Pose2& poseA, int frameA, const Pose2& poseB,
                      int frameB, int targetFrame) {
  if (frameA == frameB) return poseB;
  const double span = static_cast<double>(frameB - frameA);
  const Vec2 vt = (poseB.t - poseA.t) / span;
  const double vtheta = wrapAngle(poseB.theta - poseA.theta) / span;
  const double ahead = static_cast<double>(targetFrame - frameB);
  return Pose2{poseB.t + vt * ahead,
               wrapAngle(poseB.theta + vtheta * ahead)};
}

std::string TrackerReport::toJson(bool includeTimings) const {
  std::string out;
  out.reserve(2048);
  char buf[768];
  std::snprintf(
      buf, sizeof buf,
      "{\"frame\":%d,\"outcome\":\"%s\",\"confidence\":%.6f,"
      "\"remote_received\":%s,\"scheduler_skipped\":%s,"
      "\"prediction_available\":%s,"
      "\"prediction\":{\"x\":%.6f,\"y\":%.6f,\"theta\":%.6f},"
      "\"innovation\":{\"translation\":%.6f,\"rotation_deg\":%.6f},"
      "\"gate_rejected\":%s,\"validation_rejected\":%s,"
      "\"consecutive_misses\":%d,"
      "\"track_lost\":%s,\"rebootstrapped\":%s,"
      "\"relaxed_attempted\":%s,"
      "\"fast_path_attempted\":%s,\"fast_path_accepted\":%s,",
      frameIndex, toString(outcome), confidence,
      remoteReceived ? "true" : "false",
      schedulerSkipped ? "true" : "false",
      predictionAvailable ? "true" : "false", prediction.t.x, prediction.t.y,
      prediction.theta, innovationTranslation, innovationRotationDeg,
      gateRejected ? "true" : "false", validationRejected ? "true" : "false",
      consecutiveMisses,
      trackLostThisFrame ? "true" : "false", rebootstrapped ? "true" : "false",
      relaxedAttempted ? "true" : "false",
      fastPathAttempted ? "true" : "false",
      fastPathAccepted ? "true" : "false");
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "\"relocalization_attempted\":%s,\"relocalization_accepted\":%s,"
      "\"relocalization_candidates\":%d,\"relocalization_keyframe\":%llu,",
      relocalizationAttempted ? "true" : "false",
      relocalizationAccepted ? "true" : "false", relocalizationCandidates,
      static_cast<unsigned long long>(relocalizationKeyframe));
  out += buf;
  out += "\"recovery\":";
  out += remoteReceived ? recovery.toJson(includeTimings)
                        : std::string("null");
  out += ",\"relaxedRecovery\":";
  out += relaxedAttempted ? relaxedRecovery.toJson(includeTimings)
                          : std::string("null");
  out += ",\"relocalization\":";
  out += relocalizationAttempted ? relocalization.toJson(includeTimings)
                                 : std::string("null");
  out += "}";
  return out;
}

namespace {

/// Registry-side account of one finished tracker step. Counter names are
/// static so the stream taxonomy stays greppable (and gated by the CI
/// docs-health leg alongside the RecoveryFailure values).
void recordTrackerMetrics(const TrackerReport& rep) {
#if defined(BBA_OBSERVABILITY_ENABLED)
  obs::MetricsRegistry* reg = obs::metricsRegistry();
  if (!reg) return;
  reg->counter("stream.frames").increment();
  if (!rep.remoteReceived) reg->counter("stream.dropped_frames").increment();
  switch (rep.outcome) {
    case TrackerOutcome::Recovered:
      reg->counter("stream.recovered").increment();
      break;
    case TrackerOutcome::RecoveredRelaxed:
      reg->counter("stream.recovered_relaxed").increment();
      break;
    case TrackerOutcome::Extrapolated:
      reg->counter("stream.extrapolated").increment();
      break;
    case TrackerOutcome::TrackLost:
      reg->counter("stream.track_lost").increment();
      break;
    case TrackerOutcome::Bootstrapping:
      reg->counter("stream.bootstrapping").increment();
      break;
    case TrackerOutcome::Held:
      reg->counter("stream.held").increment();
      break;
    case TrackerOutcome::Relocalized:
      reg->counter("stream.relocalized").increment();
      break;
  }
  if (rep.schedulerSkipped) reg->counter("stream.skipped").increment();
  if (rep.gateRejected) reg->counter("stream.gate_rejected").increment();
  if (rep.validationRejected)
    reg->counter("validate.gate_rejected").increment();
  if (rep.relaxedAttempted) reg->counter("stream.relaxed_retries").increment();
  if (rep.fastPathAttempted) reg->counter("fastpath.attempted").increment();
  if (rep.fastPathAccepted) reg->counter("fastpath.accepted").increment();
  if (rep.fastPathAttempted && !rep.fastPathAccepted)
    reg->counter("fastpath.fallback").increment();
  if (rep.rebootstrapped) reg->counter("stream.rebootstraps").increment();
  if (rep.relocalizationAttempted)
    reg->counter("map.reloc_attempted").increment();
  if (rep.relocalizationAccepted)
    reg->counter("map.reloc_accepted").increment();
  if (rep.relocalizationAttempted && !rep.relocalizationAccepted)
    reg->counter("map.reloc_rejected").increment();
  reg->histogram("stream.confidence").observe(rep.confidence);
  reg->histogram("stream.consecutive_misses").observe(rep.consecutiveMisses);
  if (rep.predictionAvailable && rep.remoteReceived && rep.recovery.success) {
    reg->histogram("stream.innovation_translation")
        .observe(rep.innovationTranslation);
    reg->histogram("stream.innovation_rotation_deg")
        .observe(rep.innovationRotationDeg);
  }
#else
  (void)rep;
#endif
}

}  // namespace

PoseTracker::PoseTracker(PoseTrackerConfig config)
    : cfg_(std::move(config)),
      primary_(cfg_.aligner),
      relaxed_(cfg_.relaxedAligner ? *cfg_.relaxedAligner
                                   : relaxedRecoveryConfig(cfg_.aligner)),
      relaxedSharesFeatures_(
          egoFeatureCompatible(primary_.config(), relaxed_.config())) {
  BBA_ASSERT(cfg_.historySize >= 1);
  BBA_ASSERT(cfg_.maxConsecutiveMisses >= 1);
  BBA_ASSERT(cfg_.confidenceDecay > 0.0 && cfg_.confidenceDecay <= 1.0);
  BBA_ASSERT(cfg_.mapRelocalizationAttempts >= 1);
}

void PoseTracker::reset() {
  history_.clear();
  misses_ = 0;
  skips_ = 0;
  lostSinceAccept_ = false;
}

std::optional<Pose2> PoseTracker::predictAt(int frame) const {
  if (history_.empty()) return std::nullopt;
  if (history_.size() == 1) return history_.back().pose;
  const Accepted& a = history_.front();
  const Accepted& b = history_.back();
  return extrapolatePose(a.pose, a.frame, b.pose, b.frame, frame);
}

std::optional<Pose2> PoseTracker::predictNext() const {
  return predictAt(frame_);
}

void PoseTracker::accept(int frame, const Pose2& pose) {
  history_.push_back(Accepted{frame, pose});
  while (history_.size() > static_cast<std::size_t>(cfg_.historySize)) {
    history_.pop_front();
  }
  misses_ = 0;
  skips_ = 0;
}

void PoseTracker::acceptExternalPose(const Pose2& pose) {
  accept(frame_ == 0 ? 0 : frame_ - 1, pose);
  lostSinceAccept_ = false;
}

/// Rung 2/3: no acceptable measurement this frame. Extrapolate while the
/// miss budget lasts; declare the track lost (and clear it) once exhausted.
TrackerResult PoseTracker::miss(int frame,
                                const std::optional<Pose2>& prediction,
                                TrackerReport& rep) {
  TrackerResult out;
  ++misses_;
  rep.consecutiveMisses = misses_;
  if (!prediction) {
    // Never locked (or lost and not yet re-locked): nothing to extrapolate.
    out.outcome = TrackerOutcome::Bootstrapping;
    out.poseValid = false;
    out.confidence = 0.0;
    rep.outcome = out.outcome;
    rep.confidence = out.confidence;
    return out;
  }
  out.poseValid = true;
  out.pose = *prediction;
  out.pose3D = Pose3::fromPose2(out.pose);
  out.confidence =
      std::max(cfg_.minConfidence, std::pow(cfg_.confidenceDecay, misses_));
  if (misses_ >= cfg_.maxConsecutiveMisses) {
    // Rung 3: the extrapolation has decayed past trust. Report it one last
    // time at floor confidence and re-bootstrap from scratch.
    out.outcome = TrackerOutcome::TrackLost;
    out.confidence = cfg_.minConfidence;
    rep.trackLostThisFrame = true;
    history_.clear();
    misses_ = 0;
    skips_ = 0;
    lostSinceAccept_ = true;
  } else {
    out.outcome = TrackerOutcome::Extrapolated;
  }
  (void)frame;
  rep.outcome = out.outcome;
  rep.confidence = out.confidence;
  return out;
}

bool PoseTracker::mapRelocalizationReady() const {
  return cfg_.enableMapRelocalization && mapStore_ != nullptr &&
         egoPosePrior_.has_value();
}

void PoseTracker::offerKeyframe(const CarPerceptionData& ego,
                                const EgoFeatures* egoFeatures) {
  if (mapStore_ == nullptr || !egoPosePrior_ || egoFeatures == nullptr ||
      egoFeatures->descriptors.empty()) {
    return;
  }
  // The store dedups by spatial gap, so offering every accepted frame is
  // cheap in steady state; the descriptor/payload copies only stick for
  // frames that actually become keyframes.
  (void)mapStore_->insert(*egoPosePrior_, egoFeatures->descriptors, ego);
}

/// Rung 4: query the attached keyframe map around the ego pose prior and
/// run full recover() against the best-scoring candidates. Acceptance is
/// gated UNCONDITIONALLY by the gt-free validation score — with no motion
/// prediction to lean on, an unvalidated lock is never reported (the
/// tunnel no-false-lock pin holds with a map attached).
bool PoseTracker::tryRelocalize(const CarPerceptionData& ego,
                                const EgoFeatures* egoFeatures, Rng& rng,
                                TrackerReport& rep, TrackerResult& out) {
  BBA_SPAN("tracker-relocalize");
  std::shared_ptr<const EgoFeatures> owned;
  if (egoFeatures == nullptr) {
    owned = primary_.computeEgoFeatures(ego);
    egoFeatures = owned.get();
  }
  rep.relocalizationAttempted = true;
  const Pose2 prior = *egoPosePrior_;
  const std::vector<map::QueryMatch> matches =
      mapStore_->query(egoFeatures->descriptors, prior.t);
  rep.relocalizationCandidates = static_cast<int>(matches.size());
  int attempts = 0;
  for (const map::QueryMatch& m : matches) {
    if (attempts >= cfg_.mapRelocalizationAttempts) break;
    const map::Keyframe* kf = mapStore_->keyframe(m.id);
    if (kf == nullptr || kf->payload.bvImage.empty()) continue;  // index-only
    ++attempts;
    // The keyframe plays the "other" car. Expected keyframe -> ego
    // transform from the two global poses: T = G_ego^-1 * G_kf.
    RecoveryHints hints;
    hints.posePrior = prior.inverse().compose(kf->globalPose);
    const PoseRecoveryResult r = primary_.recover(
        kf->payload, ego, rng, &rep.relocalization, &hints, egoFeatures);
    if (!r.success || !r.validation.computed ||
        r.validation.score < cfg_.minValidationScore) {
      continue;
    }
    // Lift the relative lock back to the map frame: G_ego = G_kf * T^-1.
    const Pose2 egoGlobal = kf->globalPose.compose(r.estimate.inverse());
    // Odometry-consistency gate: a lock that strays outside the drift
    // envelope of the dead-reckoned prior is a slipped match (self-similar
    // corridors validate shifted poses), not a recovery.
    if ((egoGlobal.t - prior.t).norm() >
        cfg_.relocalizationMaxPriorDeviationM) {
      continue;
    }
    egoPosePrior_ = egoGlobal;
    rep.relocalizationAccepted = true;
    rep.relocalizationKeyframe = kf->id;
    out.poseValid = true;
    out.pose = egoGlobal;
    out.pose3D = Pose3::fromPose2(egoGlobal);
    out.confidence = cfg_.relocalizedConfidence;
    out.outcome = TrackerOutcome::Relocalized;
    rep.outcome = out.outcome;
    rep.confidence = out.confidence;
    return true;
  }
  return false;
}

TrackerResult PoseTracker::coast(TrackerReport* report) {
  BBA_SPAN("tracker-coast");
  TrackerReport rep;
  const int frame = frame_++;
  rep.frameIndex = frame;
  rep.remoteReceived = false;
  const std::optional<Pose2> prediction = predictAt(frame);
  if (prediction) {
    rep.predictionAvailable = true;
    rep.prediction = *prediction;
  }
  TrackerResult out = miss(frame, prediction, rep);
  recordTrackerMetrics(rep);
  if (report) *report = rep;
  return out;
}

TrackerResult PoseTracker::coastWithEgo(const CarPerceptionData& ego,
                                        Rng& rng, TrackerReport* report) {
  BBA_SPAN("tracker-coast-ego");
  TrackerReport rep;
  const int frame = frame_++;
  rep.frameIndex = frame;
  rep.remoteReceived = false;
  const std::optional<Pose2> prediction = predictAt(frame);
  if (prediction) {
    rep.predictionAvailable = true;
    rep.prediction = *prediction;
  }
  TrackerResult out = miss(frame, prediction, rep);
  // Rung 4: only once the peer ladder has truly run out — an Extrapolated
  // frame still trusts its track more than a map lock.
  if ((out.outcome == TrackerOutcome::TrackLost ||
       out.outcome == TrackerOutcome::Bootstrapping) &&
      mapRelocalizationReady()) {
    tryRelocalize(ego, nullptr, rng, rep, out);
  }
  recordTrackerMetrics(rep);
  if (report) *report = rep;
  return out;
}

TrackerResult PoseTracker::skipFrame(TrackerReport* report) {
  BBA_SPAN("tracker-skip");
  TrackerReport rep;
  const int frame = frame_++;
  rep.frameIndex = frame;
  rep.remoteReceived = false;
  rep.schedulerSkipped = true;
  const std::optional<Pose2> prediction = predictAt(frame);
  ++skips_;
  TrackerResult out;
  if (prediction) {
    rep.predictionAvailable = true;
    rep.prediction = *prediction;
    out.poseValid = true;
    out.pose = *prediction;
    out.pose3D = Pose3::fromPose2(out.pose);
    // Staleness decays confidence whether a miss or a skip caused it, but
    // only misses charge the track-loss budget: the skipped payloads may
    // have been perfectly good — nobody looked.
    out.confidence =
        std::max(cfg_.minConfidence,
                 std::pow(cfg_.confidenceDecay, misses_ + skips_));
    out.outcome = TrackerOutcome::Held;
  } else {
    out.outcome = TrackerOutcome::Bootstrapping;
  }
  rep.outcome = out.outcome;
  rep.confidence = out.confidence;
  rep.consecutiveMisses = misses_;
  recordTrackerMetrics(rep);
  if (report) *report = rep;
  return out;
}

TrackerResult PoseTracker::update(const CarPerceptionData& other,
                                  const CarPerceptionData& ego, Rng& rng,
                                  TrackerReport* report,
                                  const EgoFeatures* egoFeatures) {
  BBA_SPAN("tracker-update");
  TrackerReport rep;
  const int frame = frame_++;
  rep.frameIndex = frame;
  const std::optional<Pose2> prediction = predictAt(frame);
  if (prediction) {
    rep.predictionAvailable = true;
    rep.prediction = *prediction;
  }

  // The innovation gate, scaled by how long the track has been coasting.
  // Scheduler skips (skipFrame) count toward the growth like misses do —
  // a long-held track must be able to re-capture a drifted target once
  // readmitted — they just never charge the track-loss budget.
  const double gateScale = 1.0 + cfg_.gateGrowthPerMiss * (misses_ + skips_);
  auto withinGate = [&](const Pose2& measurement) {
    if (!prediction) return true;  // bootstrap: nothing to gate against
    const PoseError innov = poseError(measurement, *prediction);
    return innov.translation <= cfg_.maxTranslationInnovation * gateScale &&
           innov.rotationDeg <= cfg_.maxRotationInnovationDeg * gateScale;
  };

  // The gt-free validation gate: a recovery may report success and still
  // be geometrically inconsistent with the payload it came from (spoofed
  // boxes, impostor BV consensus). Such a lock is demoted to a miss.
  auto validated = [&](const PoseRecoveryResult& r) {
    return !cfg_.enableValidationGate || !r.validation.computed ||
           r.validation.score >= cfg_.minValidationScore;
  };

  RecoveryHints hints;
  const RecoveryHints* hintsPtr = nullptr;
  if (prediction) {
    hints.posePrior = *prediction;
    hintsPtr = &hints;
  }

  // Ego-side features: computed once here (or supplied by the caller —
  // e.g. CooperationService's per-frame cache shared across peers) and fed
  // to every rung instead of each recover() recomputing them. The relaxed
  // aligner joins only when its config runs the identical feature
  // pipeline.
  std::shared_ptr<const EgoFeatures> ownedFeatures;
  if (egoFeatures == nullptr && cfg_.shareEgoFeatures) {
    ownedFeatures = primary_.computeEgoFeatures(ego);
    egoFeatures = ownedFeatures.get();
  }
  const EgoFeatures* relaxedFeatures =
      relaxedSharesFeatures_ ? egoFeatures : nullptr;

  // Rung 0a: tracker-seeded fast path — only on a steady track (confident
  // velocity-capable prediction, no misses in flight); a bootstrapping or
  // coasting track needs the full sweep's robustness. A rejected fast
  // attempt falls through to the full rung-0 call as if it never happened.
  PoseRecoveryResult primary;
  bool fastAccepted = false;
  if (cfg_.enableFastPath && prediction && misses_ == 0 &&
      history_.size() >= 2) {
    BBA_SPAN("tracker-fastpath");
    rep.fastPathAttempted = true;
    RecoveryHints fastHints = hints;
    fastHints.fastPath = true;
    fastHints.maxKeypointsOther = cfg_.fastPathMaxKeypoints;
    const PoseRecoveryResult fast = primary_.recover(
        other, ego, rng, &rep.recovery, &fastHints, egoFeatures);
    if (fast.success && withinGate(fast.estimate) && validated(fast)) {
      rep.fastPathAccepted = true;
      primary = fast;
      fastAccepted = true;
    }
  }

  // Rung 0: the primary measurement.
  if (!fastAccepted) {
    primary = primary_.recover(other, ego, rng, &rep.recovery, hintsPtr,
                               egoFeatures);
  }
  if (prediction && primary.success) {
    const PoseError innov = poseError(primary.estimate, *prediction);
    rep.innovationTranslation = innov.translation;
    rep.innovationRotationDeg = innov.rotationDeg;
  }
  if (primary.success && withinGate(primary.estimate) &&
      validated(primary)) {
    const bool relock = lostSinceAccept_;
    accept(frame, primary.estimate);
    lostSinceAccept_ = false;
    offerKeyframe(ego, egoFeatures);
    TrackerResult out;
    out.poseValid = true;
    out.pose = primary.estimate;
    out.pose3D = primary.estimate3D;
    out.confidence = 1.0;
    out.outcome = TrackerOutcome::Recovered;
    rep.outcome = out.outcome;
    rep.confidence = out.confidence;
    rep.consecutiveMisses = 0;
    rep.rebootstrapped = relock;
    recordTrackerMetrics(rep);
    if (report) *report = rep;
    return out;
  }
  // Succeeded but rejected: attribute the demotion to the gate that fired.
  rep.gateRejected = primary.success && !withinGate(primary.estimate);
  rep.validationRejected =
      primary.success && withinGate(primary.estimate) && !validated(primary);

  // Rung 1: relaxed retry, seeded from the prediction. Only meaningful
  // when a prediction exists — without one the gate cannot protect the
  // lowered thresholds.
  if (prediction && cfg_.enableRelaxedRetry) {
    BBA_SPAN("tracker-relaxed-retry");
    rep.relaxedAttempted = true;
    const PoseRecoveryResult retried = relaxed_.recover(
        other, ego, rng, &rep.relaxedRecovery, hintsPtr, relaxedFeatures);
    if (retried.success && withinGate(retried.estimate) &&
        !validated(retried)) {
      rep.validationRejected = true;
    }
    if (retried.success && withinGate(retried.estimate) &&
        validated(retried)) {
      rep.rebootstrapped = lostSinceAccept_;
      accept(frame, retried.estimate);
      lostSinceAccept_ = false;
      offerKeyframe(ego, egoFeatures);
      TrackerResult out;
      out.poseValid = true;
      out.pose = retried.estimate;
      out.pose3D = retried.estimate3D;
      out.confidence = cfg_.relaxedConfidence;
      out.outcome = TrackerOutcome::RecoveredRelaxed;
      rep.outcome = out.outcome;
      rep.confidence = out.confidence;
      rep.consecutiveMisses = 0;
      recordTrackerMetrics(rep);
      if (report) *report = rep;
      return out;
    }
  }

  // Rungs 2/3.
  TrackerResult out = miss(frame, prediction, rep);
  // Rung 4: map relocalization, only when the peer ladder bottomed out
  // (a coasting Extrapolated track still outranks a map lock).
  if ((out.outcome == TrackerOutcome::TrackLost ||
       out.outcome == TrackerOutcome::Bootstrapping) &&
      mapRelocalizationReady()) {
    tryRelocalize(ego, egoFeatures, rng, rep, out);
  }
  recordTrackerMetrics(rep);
  if (report) *report = rep;
  return out;
}

TrackerResult PoseTracker::processFrame(const StreamFrame& frame, Rng& rng,
                                        TrackerReport* report) {
  if (!frame.remoteReceived) return coast(report);
  const CarPerceptionData ego =
      primary_.makeCarData(frame.egoCloud, frame.egoDets);
  const CarPerceptionData other =
      primary_.makeCarData(frame.otherCloud, frame.otherDets);
  return update(other, ego, rng, report);
}

}  // namespace bba
