#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "core/bb_align.hpp"
#include "core/ego_cache.hpp"
#include "dataset/sequence.hpp"

namespace bba {

namespace map {
class KeyframeStore;  // map/keyframe_store.hpp
}  // namespace map

/// How one streamed frame's reported pose was obtained — the rungs of the
/// degradation ladder, best first.
enum class TrackerOutcome {
  Recovered,         ///< fresh BB-Align measurement accepted (rung 0)
  RecoveredRelaxed,  ///< relaxed-parameter retry accepted (rung 1)
  Extrapolated,      ///< constant-velocity fallback (rung 2)
  TrackLost,         ///< miss budget exhausted this frame; track cleared (rung 3)
  Bootstrapping,     ///< no track yet and no measurement — no pose to report
  /// Scheduler skip (skipFrame): the caller chose not to spend a recover()
  /// on this session — spatial pre-gate or load shedding, see
  /// service/admission.hpp. The pose is extrapolated like rung 2 but the
  /// skip never counts against the miss budget: an unexamined frame is not
  /// evidence of a failing track. Appended last so existing outcome
  /// indices stay pinned.
  Held,
  /// Map relocalization: the track is gone (TrackLost / Bootstrapping) and
  /// no cooperative peer rescued it, but a keyframe-map query produced a
  /// validated lock against a stored place (see map/keyframe_store.hpp).
  /// Unlike every other rung, the reported pose is the EGO GLOBAL pose in
  /// the map frame — there is no peer to be relative to. Appended after
  /// Held to keep existing outcome indices pinned.
  Relocalized,
};

inline constexpr int kTrackerOutcomeCount = 7;

[[nodiscard]] const char* toString(TrackerOutcome o);

/// Tracker configuration. The defaults assume a 10 Hz frame period and the
/// paper-default aligner; the gates are sized to the physics (two cars at
/// urban speeds move well under a meter per frame relative to each other,
/// while a wrong BB-Align lock is typically off by several meters).
struct PoseTrackerConfig {
  /// The primary (rung-0) aligner configuration.
  BBAlignConfig aligner;
  /// Override for the rung-1 relaxed aligner; when unset it is derived
  /// from `aligner` via relaxedRecoveryConfig().
  std::optional<BBAlignConfig> relaxedAligner;
  /// Run the rung-1 relaxed retry at all (it costs a second recover()).
  bool enableRelaxedRetry = true;

  /// Accepted poses kept for prediction (>= 2 enables velocity).
  int historySize = 4;

  /// Innovation gates: a fresh measurement is accepted only if it deviates
  /// from the constant-velocity prediction by less than these. Both scale
  /// up by `gateGrowthPerMiss` per consecutive miss, so a track that has
  /// been coasting can re-capture a drifted target.
  double maxTranslationInnovation = 3.0;   ///< meters
  double maxRotationInnovationDeg = 12.0;  ///< degrees
  double gateGrowthPerMiss = 0.5;

  /// Gt-free validation gate: a "successful" recovery whose
  /// PoseValidation score (see obs/report.hpp) falls below this is demoted
  /// to a miss — a geometrically inconsistent lock never replaces the
  /// trusted pose. Deterministic geometry, so the gate preserves the
  /// byte-identical-at-any-thread-count contract.
  /// Calibrated against the pinned scenarios: honest recoveries score
  /// >= ~0.72, coherent box lies <= ~0.61 (see tests/stream_test.cpp) —
  /// 0.5 rejects most attacks with headroom for degraded-but-honest
  /// payloads; sensitivity-critical deployments raise it toward 0.65.
  bool enableValidationGate = true;
  double minValidationScore = 0.5;

  /// Confidence of a rung-1 (relaxed) acceptance; rung 0 reports 1.0.
  double relaxedConfidence = 0.8;
  /// Per-coasted-frame multiplicative confidence decay of rung 2.
  double confidenceDecay = 0.7;
  /// Confidence floor of any reported pose.
  double minConfidence = 0.05;

  /// Consecutive misses (gate rejections, failed recoveries or dropped
  /// frames) tolerated before the track is declared lost and the tracker
  /// re-bootstraps from scratch.
  int maxConsecutiveMisses = 4;

  /// Compute the ego-side features (MIM, keypoints, descriptors) once per
  /// update() and hand them to every recover() rung instead of letting
  /// each rung recompute them. The relaxed aligner joins the sharing only
  /// when egoFeatureCompatible() holds for its config (it does for
  /// relaxedRecoveryConfig(), which touches matching/RANSAC parameters
  /// only). Byte-identical on or off — the shared features come from the
  /// same deterministic pipeline.
  bool shareEgoFeatures = true;

  /// Tracker-seeded fast path (rung 0a): with a steady track (confident
  /// prediction, zero consecutive misses, velocity-capable history), try a
  /// narrowed recover() first — yaw search collapsed to the prediction,
  /// other-image keypoints capped at fastPathMaxKeypoints. If the fast
  /// attempt fails or is gate/validation rejected, the full rung-0 call
  /// runs as if the fast attempt never happened, so end-to-end success is
  /// preserved (asserted by tests/stream_test.cpp). Off by default: it
  /// changes rng consumption, so enabling it re-pins byte-exact outputs.
  bool enableFastPath = false;
  /// Fast path only: other-image keypoint budget (see RecoveryHints).
  int fastPathMaxKeypoints = 300;

  /// Map relocalization (the rung below track-lost). Engages only when a
  /// KeyframeStore is attached via attachMapStore() AND an ego pose prior
  /// has been fed via setEgoPosePrior() — a tracker without a map runs
  /// byte-identical to before this rung existed.
  bool enableMapRelocalization = true;
  /// Max keyframe candidates fed to recover() per relocalization attempt
  /// (each costs a full recover() call; the best-scoring candidate goes
  /// first, so attempt 2+ only runs when attempt 1 fails or is rejected).
  int mapRelocalizationAttempts = 2;
  /// Confidence of a Relocalized pose. Below relaxedConfidence: the map
  /// may be stale and the ego prior coarse, and unlike rungs 0/1 there is
  /// no motion-prediction gate backing the acceptance — only the gt-free
  /// validation gate (which relocalization applies UNCONDITIONALLY, even
  /// with enableValidationGate off: with no trusted prior to lean on, an
  /// unvalidated map lock is never reported).
  double relocalizedConfidence = 0.6;
  /// Odometry-consistency envelope: an accepted relocalization's ego
  /// global pose must land within this many meters of the fed pose prior.
  /// Self-similar environments (tunnels, corridors) produce slipped locks
  /// that the occupancy/box validator scores highly — a corridor shifted
  /// along itself still overlaps itself — but such locks stray from the
  /// dead-reckoned prior while honest ones land inside the drift
  /// envelope. Size it to the worst odometry drift expected between map
  /// visits; the pinned tunnel cell separates at ~0.5m (honest) vs
  /// ~3.3m (slipped).
  double relocalizationMaxPriorDeviationM = 2.5;
};

/// Relaxed-parameter variant of an aligner config for the rung-1 retry:
/// wider matching (one more candidate per keypoint), looser RANSAC inlier
/// thresholds and lower success bars. On its own this config would accept
/// poses the primary rejects for good reason — the tracker only ever uses
/// it *behind the innovation gate*, where the motion prediction supplies
/// the trust the lowered thresholds gave up.
[[nodiscard]] BBAlignConfig relaxedRecoveryConfig(const BBAlignConfig& base);

/// Constant-velocity extrapolation in (x, y, theta): the per-frame finite
/// difference between (poseA, frameA) and (poseB, frameB) carried forward
/// to `targetFrame`. With frameA == frameB the pose is held.
[[nodiscard]] Pose2 extrapolatePose(const Pose2& poseA, int frameA,
                                    const Pose2& poseB, int frameB,
                                    int targetFrame);

/// Per-frame account of one tracker step: the ladder rung taken, the
/// prediction and innovation that drove the decision, and the full
/// PoseRecoveryReport(s) of the underlying recover() call(s) — this is the
/// streaming extension of the per-call report.
struct TrackerReport {
  int frameIndex = 0;
  TrackerOutcome outcome = TrackerOutcome::Bootstrapping;
  double confidence = 0.0;
  bool remoteReceived = true;    ///< false for a coasted (dropped) frame
  /// This frame was a skipFrame() step (outcome Held or Bootstrapping):
  /// the caller's scheduler withheld the payload, nothing was measured.
  bool schedulerSkipped = false;

  bool predictionAvailable = false;
  Pose2 prediction;
  /// Innovation of the accepted-or-rejected *primary* measurement against
  /// the prediction (0 when either side is missing).
  double innovationTranslation = 0.0;
  double innovationRotationDeg = 0.0;
  /// The primary measurement succeeded but fell outside the gate.
  bool gateRejected = false;
  /// A successful measurement (primary or relaxed) passed the innovation
  /// gate but failed the gt-free validation gate and was demoted.
  bool validationRejected = false;

  int consecutiveMisses = 0;
  bool trackLostThisFrame = false;
  bool rebootstrapped = false;  ///< this frame re-locked after a lost track

  /// Rung-0 recover() account (valid when remoteReceived). When the fast
  /// path was attempted *and accepted*, this IS the fast attempt's report.
  PoseRecoveryReport recovery;
  /// Rung-1 relaxed recover() account (valid when relaxedAttempted).
  bool relaxedAttempted = false;
  PoseRecoveryReport relaxedRecovery;
  /// Rung-0a fast-path account (enableFastPath trackers only).
  bool fastPathAttempted = false;
  bool fastPathAccepted = false;
  /// Map-relocalization account (map-attached trackers only). Attempted
  /// means the keyframe store was queried; candidates is the match count;
  /// keyframe is the accepted keyframe's id (0 when rejected);
  /// `relocalization` is the last relocalization recover()'s report.
  bool relocalizationAttempted = false;
  bool relocalizationAccepted = false;
  int relocalizationCandidates = 0;
  std::uint64_t relocalizationKeyframe = 0;
  PoseRecoveryReport relocalization;

  /// One JSON object with every field above (stable key names); embeds
  /// the recover() reports under "recovery" / "relaxedRecovery". With
  /// `includeTimings == false` the embedded reports omit their wall-clock
  /// "ms" objects, making the export byte-comparable across runs.
  [[nodiscard]] std::string toJson(bool includeTimings = true) const;
};

/// The pose a tracker reports for one frame.
struct TrackerResult {
  /// False only while bootstrapping (no measurement ever accepted and the
  /// current frame did not produce one): there is no pose to report.
  bool poseValid = false;
  Pose2 pose;                ///< delivered-payload other -> ego
  Pose3 pose3D;              ///< Eq. 1 lift of `pose`
  double confidence = 0.0;   ///< 1.0 fresh ... minConfidence stale
  TrackerOutcome outcome = TrackerOutcome::Bootstrapping;
};

/// Stateful streaming wrapper around BBAlign for a sequence of frame
/// pairs: keeps a short history of accepted poses, predicts the next
/// relative pose by constant-velocity extrapolation, gates each fresh
/// measurement against the prediction, and on failure walks the
/// degradation ladder — (1) relaxed-parameter retry seeded from the
/// prediction, (2) extrapolated pose with decayed confidence,
/// (3) track-lost + re-bootstrap after too many consecutive misses.
///
/// Every decision is serial and every underlying recover() call is
/// thread-count invariant, so tracker outputs are byte-identical at any
/// BBA_THREADS (asserted by tests/stream_test.cpp).
class PoseTracker {
 public:
  explicit PoseTracker(PoseTrackerConfig config = {});

  [[nodiscard]] const PoseTrackerConfig& config() const { return cfg_; }

  /// Process one received frame payload. `rng` drives the RANSAC sampling
  /// of the underlying recover() call(s).
  ///
  /// `egoFeatures` (optional) supplies the ego-side features precomputed
  /// elsewhere (e.g. CooperationService's per-frame EgoFeatureCache shared
  /// across peer sessions); they must be compatible with the primary
  /// aligner's config (egoFeatureCompatible). When null and
  /// cfg.shareEgoFeatures, the tracker computes them once itself.
  TrackerResult update(const CarPerceptionData& other,
                       const CarPerceptionData& ego, Rng& rng,
                       TrackerReport* report = nullptr,
                       const EgoFeatures* egoFeatures = nullptr);

  /// Process one frame whose remote payload never arrived (link drop):
  /// advances time and walks straight to rung 2 of the ladder.
  TrackerResult coast(TrackerReport* report = nullptr);

  /// coast(), but with the ego car's own perception available: when the
  /// miss lands on TrackLost/Bootstrapping and a map is attached, the
  /// tracker queries the keyframe store around the ego pose prior and
  /// tries to relocalize (outcome Relocalized, pose = ego global pose in
  /// the map frame). This is the no-peer-in-range path: the vehicle still
  /// senses, it just has nobody to match against. `rng` drives the
  /// relocalization recover() calls.
  TrackerResult coastWithEgo(const CarPerceptionData& ego, Rng& rng,
                             TrackerReport* report = nullptr);

  /// Process one frame the CALLER chose not to examine (spatial pre-gate
  /// skip or load shedding — see service/admission.hpp): advance time and
  /// hold the track by extrapolation, WITHOUT charging the miss budget.
  /// Unlike coast(), an arbitrarily long run of skips never declares the
  /// track lost — the payloads may have been perfectly good; nobody
  /// looked. Skips still decay confidence and grow the innovation gate
  /// (like misses) so a long-held track can re-capture a drifted target
  /// once the scheduler readmits it. Outcome: Held with a track,
  /// Bootstrapping without one.
  TrackerResult skipFrame(TrackerReport* report = nullptr);

  /// Convenience driver for dataset streams: builds the per-car payloads
  /// with the primary aligner and dispatches to update() or coast().
  TrackerResult processFrame(const StreamFrame& frame, Rng& rng,
                             TrackerReport* report = nullptr);

  /// Inject an externally trusted pose (e.g. a one-off GPS fix or a V2X
  /// handshake) as if it were an accepted measurement: initializes or
  /// steadies the track without running recovery.
  void acceptExternalPose(const Pose2& pose);

  /// Attach a keyframe map (nullptr detaches). NOT owned; must outlive
  /// the tracker's use of it, and must only be shared between trackers
  /// that run serially (the store is externally synchronized). With a map
  /// attached AND an ego pose prior set, the tracker (a) offers an ego
  /// keyframe to the store on every accepted measurement, and (b) gains
  /// the Relocalized rung below track-lost.
  void attachMapStore(map::KeyframeStore* store) { mapStore_ = store; }
  [[nodiscard]] map::KeyframeStore* mapStore() const { return mapStore_; }

  /// Feed the ego vehicle's own global pose estimate (odometry / dead
  /// reckoning in the map frame) — the spatial prior for keyframe inserts
  /// and map queries. Call once per frame BEFORE update()/coastWithEgo()
  /// when a map is attached; a successful relocalization refreshes it to
  /// the recovered map-frame pose. Deliberately a plain setter: the
  /// tracker models no ego-motion of its own (its history is
  /// peer-relative), the platform's odometry does.
  void setEgoPosePrior(const Pose2& pose) { egoPosePrior_ = pose; }
  [[nodiscard]] const std::optional<Pose2>& egoPosePrior() const {
    return egoPosePrior_;
  }

  /// Constant-velocity prediction for the *next* frame, when a track
  /// exists.
  [[nodiscard]] std::optional<Pose2> predictNext() const;

  /// True once at least one pose has been accepted and the track has not
  /// been lost since.
  [[nodiscard]] bool hasTrack() const { return !history_.empty(); }
  /// Most recently accepted pose (measurement or external injection);
  /// nullopt without a track. This is the raw accept, not a prediction —
  /// callers wanting the dead-reckoned current pose use predictNext().
  [[nodiscard]] std::optional<Pose2> lastAcceptedPose() const {
    if (history_.empty()) return std::nullopt;
    return history_.back().pose;
  }
  [[nodiscard]] int consecutiveMisses() const { return misses_; }
  /// Consecutive skipFrame() steps since the last accepted measurement.
  [[nodiscard]] int consecutiveSkips() const { return skips_; }
  [[nodiscard]] int framesProcessed() const { return frame_; }

  /// Forget everything (manual re-bootstrap).
  void reset();

 private:
  struct Accepted {
    int frame = 0;
    Pose2 pose;
  };

  [[nodiscard]] std::optional<Pose2> predictAt(int frame) const;
  void accept(int frame, const Pose2& pose);
  TrackerResult miss(int frame, const std::optional<Pose2>& prediction,
                     TrackerReport& rep);
  /// True when the Relocalized rung can engage at all this frame.
  [[nodiscard]] bool mapRelocalizationReady() const;
  /// Query the map around the ego pose prior and try to recover against
  /// the best candidates. On a validated lock, fills `out`/`rep` and
  /// refreshes the ego pose prior. Never touches the peer-relative
  /// history.
  bool tryRelocalize(const CarPerceptionData& ego,
                     const EgoFeatures* egoFeatures, Rng& rng,
                     TrackerReport& rep, TrackerResult& out);
  /// Offer the current ego frame to the attached map as a keyframe
  /// (no-op without a map, an ego pose prior, or usable features).
  void offerKeyframe(const CarPerceptionData& ego,
                     const EgoFeatures* egoFeatures);

  PoseTrackerConfig cfg_;
  BBAlign primary_;
  BBAlign relaxed_;
  bool relaxedSharesFeatures_ = false;  ///< egoFeatureCompatible(primary, relaxed)
  std::deque<Accepted> history_;
  int frame_ = 0;    ///< frames processed so far (next frame index)
  int misses_ = 0;   ///< consecutive misses
  int skips_ = 0;    ///< consecutive scheduler skips (never counts as a miss)
  bool lostSinceAccept_ = false;  ///< a track was lost; next lock is a re-bootstrap
  map::KeyframeStore* mapStore_ = nullptr;  ///< not owned
  std::optional<Pose2> egoPosePrior_;  ///< ego global pose, map frame
};

}  // namespace bba
