#include "match/matcher.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bba {

namespace {
/// Fixed-size top-k tracker of (index, distance) pairs, ascending by
/// distance. k is small (<= 4 in practice), so insertion is linear.
struct TopK {
  explicit TopK(int k) : entries(static_cast<std::size_t>(k),
                                 {-1, std::numeric_limits<float>::infinity()}) {}

  void consider(int index, float d) {
    if (d >= entries.back().second) return;
    auto it = std::upper_bound(
        entries.begin(), entries.end(), d,
        [](float v, const std::pair<int, float>& e) { return v < e.second; });
    entries.pop_back();
    entries.insert(it, {index, d});
  }

  std::vector<std::pair<int, float>> entries;
};
}  // namespace

std::vector<Match> matchDescriptors(const DescriptorSet& src,
                                    const DescriptorSet& dst,
                                    const MatchParams& prm) {
  BBA_SPAN("match");
  BBA_ASSERT(prm.topK >= 1);
  std::vector<Match> out;
  if (src.empty() || dst.empty()) return out;

  // Precompute flipped variants of the source descriptors once.
  std::vector<std::vector<float>> srcFlipped;
  if (prm.useFlipped) {
    srcFlipped.reserve(src.size());
    for (std::size_t i = 0; i < src.size(); ++i)
      srcFlipped.push_back(src.flipped(i));
  }

  // Track one extra neighbour for the ratio test.
  const int k = prm.topK + 1;
  std::vector<TopK> forward(src.size(), TopK(k));
  std::vector<std::pair<int, float>> backwardBest(
      dst.size(), {-1, std::numeric_limits<float>::infinity()});

  for (std::size_t i = 0; i < src.size(); ++i) {
    for (std::size_t j = 0; j < dst.size(); ++j) {
      float d = descriptorDistance2(src.descriptor(i), dst.descriptor(j));
      if (prm.useFlipped) {
        d = std::min(d, descriptorDistance2(srcFlipped[i], dst.descriptor(j)));
      }
      forward[i].consider(static_cast<int>(j), d);
      if (d < backwardBest[j].second) {
        backwardBest[j] = {static_cast<int>(i), d};
      }
    }
  }

  const float ratio2 = prm.ratio * prm.ratio;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const auto& cands = forward[i].entries;
    const float dLast = cands.back().second;  // (topK+1)-th distance
    for (int rank = 0; rank < prm.topK; ++rank) {
      const auto [j, d] = cands[static_cast<std::size_t>(rank)];
      if (j < 0) break;
      if (prm.ratio < 1.0f && std::isfinite(dLast) && dLast > 0.0f &&
          d >= ratio2 * dLast)
        continue;
      if (prm.topK == 1 && prm.mutualCheck &&
          backwardBest[static_cast<std::size_t>(j)].first !=
              static_cast<int>(i))
        continue;
      out.push_back(Match{static_cast<int>(i), j, std::sqrt(d)});
    }
  }
  BBA_COUNTER_ADD("match.matches", static_cast<std::int64_t>(out.size()));
  return out;
}

}  // namespace bba
