#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "geom/pose2.hpp"

namespace bba {

/// RANSAC parameters for rigid 2-D transform estimation.
struct RansacParams {
  int iterations = 2000;
  /// Residual threshold (meters) for a correspondence to count as an inlier.
  double inlierThreshold = 1.0;
  /// Minimum inlier count for the result to be flagged `ok`.
  int minInliers = 3;
  /// Reject hypothesis pairs closer than this (degenerate geometry).
  double minPairSeparation = 1.0;
  /// Number of final refine-and-recount rounds on the inlier set.
  int refineRounds = 2;
  /// When per-correspondence orientations are supplied, an inlier must
  /// also satisfy |(dstOrient - srcOrient) - theta| < tolerance (mod pi).
  /// This suppresses the "sliding along a wall" false consensus endemic to
  /// repetitive road scenes.
  double orientationToleranceRad = 0.30;
  /// Optional prior on the transform's rotation (mod pi, radians):
  /// hypotheses with |theta - prior| (mod pi) above the tolerance are
  /// skipped. Negative disables. BB-Align supplies the global-yaw
  /// candidate under evaluation.
  double thetaPriorModPi = -1.0;
  double thetaPriorTolerance = 0.35;
  /// Optional bound on the hypothesis translation norm (meters); negative
  /// disables. Stage 2 uses it: a box-alignment correction larger than the
  /// worst plausible stage-1 residual is a mispaired consensus, not a fix.
  double maxTranslationNorm = -1.0;
};

/// RANSAC output: the estimated transform plus the paper's confidence
/// signal — the inlier count (used by the success criterion §V-A).
struct RansacResult {
  Pose2 transform;
  int inlierCount = 0;
  std::vector<int> inlierIndices;
  bool ok = false;
};

/// One unrefined RANSAC hypothesis.
struct RansacCandidate {
  Pose2 transform;
  int inlierCount = 0;
};

/// Robustly estimate the rigid 2-D transform mapping src[i] -> dst[i]
/// (Algorithm 1 lines 11 & 14). Minimal sample: 2 correspondences. The
/// winning hypothesis is refined by least squares over its inliers.
///
/// `srcOrientations`/`dstOrientations` (optional, pi-periodic radians —
/// e.g. dominant MIM orientations) enable the orientation-consistency
/// inlier gate; pass empty spans to disable.
[[nodiscard]] RansacResult ransacRigid2D(
    std::span<const Vec2> src, std::span<const Vec2> dst,
    const RansacParams& params, Rng& rng,
    std::span<const double> srcOrientations = {},
    std::span<const double> dstOrientations = {});

/// Multi-hypothesis variant: up to `maxCandidates` geometrically distinct
/// hypotheses, sorted by descending inlier count, none refined. Repetitive
/// scenes (road corridors) produce impostor consensus sets whose inlier
/// counts rival the true one; callers disambiguate with an independent
/// verification signal (BB-Align stage 1 scores candidates by BV-image
/// occupancy overlap) and then refine the winner with refineRigid2D.
[[nodiscard]] std::vector<RansacCandidate> ransacRigid2DCandidates(
    std::span<const Vec2> src, std::span<const Vec2> dst,
    const RansacParams& params, Rng& rng, int maxCandidates,
    std::span<const double> srcOrientations = {},
    std::span<const double> dstOrientations = {});

/// Translation-only RANSAC (1-point hypotheses): estimates the best pure
/// translation mapping src[i] -> dst[i]. Stage 2 of BB-Align uses it: box
/// alignment predominantly corrects the *translation* residual left by
/// self-motion distortion (the paper's Fig. 14), and solving rotation from
/// a handful of noisy box corners would inject their yaw noise into an
/// already-good stage-1 rotation.
[[nodiscard]] RansacResult ransacTranslation2D(std::span<const Vec2> src,
                                               std::span<const Vec2> dst,
                                               const RansacParams& params,
                                               Rng& rng);

/// External verification signal for a candidate transform (higher is
/// better; e.g. BB-Align's BV occupancy-overlap score).
using PoseVerifier = std::function<double(const Pose2&)>;

/// Verified RANSAC: every distinct hypothesis that reaches `minInliers`
/// support is scored by `verifier`, and the *highest-scoring* hypothesis —
/// not the highest-inlier one — wins, then gets least-squares refined.
/// This is how BB-Align's stage 1 survives repetitive road corridors where
/// impostor consensus sets out-count the true pose. `verifierScore` of the
/// returned result is the winner's score (-1 if nothing qualified).
struct VerifiedRansacResult {
  RansacResult ransac;
  double verifierScore = -1.0;
};
[[nodiscard]] VerifiedRansacResult ransacRigid2DVerified(
    std::span<const Vec2> src, std::span<const Vec2> dst,
    const RansacParams& params, Rng& rng, const PoseVerifier& verifier,
    std::span<const double> srcOrientations = {},
    std::span<const double> dstOrientations = {});

/// Iteratively recount inliers and least-squares refit, starting from
/// `initial`. The final polish applied to the winning hypothesis.
[[nodiscard]] RansacResult refineRigid2D(
    const Pose2& initial, std::span<const Vec2> src,
    std::span<const Vec2> dst, const RansacParams& params,
    std::span<const double> srcOrientations = {},
    std::span<const double> dstOrientations = {});

}  // namespace bba
