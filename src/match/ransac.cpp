#include "match/ransac.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "geom/kabsch.hpp"
#include "obs/metrics.hpp"

namespace bba {

namespace {

/// Iteration grain for the parallel hypothesis sweeps. Fixed (never a
/// function of the thread count) so chunk boundaries — and therefore all
/// per-chunk partial results — are reproducible at any BBA_THREADS.
constexpr std::int64_t kIterGrain = 256;

/// Angular distance modulo pi, in [0, pi/2]. Orientations from the MIM are
/// pi-periodic (a line has no front/back).
double angDistPi(double a) {
  a = std::fmod(a, std::numbers::pi);
  if (a < 0.0) a += std::numbers::pi;
  return std::min(a, std::numbers::pi - a);
}

struct Gate {
  std::span<const double> srcOrient;
  std::span<const double> dstOrient;
  double tolerance = 0.0;

  [[nodiscard]] bool enabled() const { return !srcOrient.empty(); }
  [[nodiscard]] bool pass(std::size_t i, double theta) const {
    if (!enabled()) return true;
    return angDistPi(dstOrient[i] - srcOrient[i] - theta) <= tolerance;
  }
};

int countInliers(const Pose2& T, std::span<const Vec2> src,
                 std::span<const Vec2> dst, double threshold,
                 const Gate& gate, std::vector<int>* indices) {
  const double t2 = threshold * threshold;
  int count = 0;
  if (indices) indices->clear();
  for (std::size_t i = 0; i < src.size(); ++i) {
    if ((dst[i] - T.apply(src[i])).squaredNorm() > t2) continue;
    if (!gate.pass(i, T.theta)) continue;
    ++count;
    if (indices) indices->push_back(static_cast<int>(i));
  }
  return count;
}

Pose2 fitFromIndices(std::span<const Vec2> src, std::span<const Vec2> dst,
                     const std::vector<int>& idx) {
  std::vector<Vec2> s, d;
  s.reserve(idx.size());
  d.reserve(idx.size());
  for (int i : idx) {
    s.push_back(src[static_cast<std::size_t>(i)]);
    d.push_back(dst[static_cast<std::size_t>(i)]);
  }
  return estimateRigid2D(s, d);
}

bool similarTransforms(const Pose2& a, const Pose2& b) {
  return (a.t - b.t).norm() < 2.0 &&
         angularDistance(a.theta, b.theta) < 6.0 * kDegToRad;
}

/// The cheap part of one RANSAC iteration: draw a 2-point minimal sample
/// from the iteration's counter-based substream and run every filter that
/// doesn't need the full correspondence set (degeneracy, length
/// preservation, theta prior, orientation gate on the sample, translation
/// bound). Returns true with the hypothesis in `out` if it survives.
///
/// Everything here is a pure function of (base, it, inputs), so iterations
/// can run in any order on any number of threads and produce the same
/// hypothesis stream.
bool sampleHypothesis(std::uint64_t base, std::int64_t it,
                      std::span<const Vec2> src, std::span<const Vec2> dst,
                      const RansacParams& prm, const Gate& gate, Pose2* out) {
  const int n = static_cast<int>(src.size());
  CounterRng cr(base, static_cast<std::uint64_t>(it));
  const int i = cr.uniformInt(0, n - 1);
  const int j = cr.uniformInt(0, n - 1);
  if (i == j) return false;

  const Vec2 sv =
      src[static_cast<std::size_t>(j)] - src[static_cast<std::size_t>(i)];
  const Vec2 dv =
      dst[static_cast<std::size_t>(j)] - dst[static_cast<std::size_t>(i)];
  const double sn = sv.norm();
  if (sn < prm.minPairSeparation) return false;
  // A rigid transform preserves lengths: prune grossly inconsistent pairs
  // before the (more expensive) inlier count.
  if (std::abs(sn - dv.norm()) > 2.0 * prm.inlierThreshold) return false;

  const double theta = std::atan2(dv.y, dv.x) - std::atan2(sv.y, sv.x);
  if (prm.thetaPriorModPi >= 0.0 &&
      angDistPi(theta - prm.thetaPriorModPi) > prm.thetaPriorTolerance)
    return false;
  // The minimal sample must itself pass the orientation gate.
  if (!gate.pass(static_cast<std::size_t>(i), theta) ||
      !gate.pass(static_cast<std::size_t>(j), theta))
    return false;

  const Vec2 t = dst[static_cast<std::size_t>(i)] -
                 src[static_cast<std::size_t>(i)].rotated(theta);
  if (prm.maxTranslationNorm >= 0.0 && t.norm() > prm.maxTranslationNorm)
    return false;
  *out = Pose2{t, wrapAngle(theta)};
  return true;
}

RansacResult refineWithGate(const Pose2& initial, std::span<const Vec2> src,
                            std::span<const Vec2> dst,
                            const RansacParams& prm, const Gate& gate) {
  RansacResult best;
  best.transform = initial;
  best.inlierCount = countInliers(initial, src, dst, prm.inlierThreshold,
                                  gate, &best.inlierIndices);
  for (int round = 0; round < prm.refineRounds; ++round) {
    if (best.inlierIndices.size() < 2) break;
    const Pose2 refined = fitFromIndices(src, dst, best.inlierIndices);
    std::vector<int> refinedIdx;
    const int refinedCount = countInliers(refined, src, dst,
                                          prm.inlierThreshold, gate,
                                          &refinedIdx);
    if (refinedCount >= best.inlierCount) {
      best.transform = refined;
      best.inlierCount = refinedCount;
      best.inlierIndices = std::move(refinedIdx);
    } else {
      break;
    }
  }
  best.ok = best.inlierCount >= prm.minInliers;
  return best;
}

}  // namespace

std::vector<RansacCandidate> ransacRigid2DCandidates(
    std::span<const Vec2> src, std::span<const Vec2> dst,
    const RansacParams& prm, Rng& rng, int maxCandidates,
    std::span<const double> srcOrientations,
    std::span<const double> dstOrientations) {
  BBA_ASSERT(src.size() == dst.size());
  BBA_ASSERT(srcOrientations.size() == dstOrientations.size());
  BBA_ASSERT(srcOrientations.empty() || srcOrientations.size() == src.size());
  BBA_ASSERT(maxCandidates >= 1);

  const Gate gate{srcOrientations, dstOrientations,
                  prm.orientationToleranceRad};
  std::vector<RansacCandidate> top;  // sorted descending by inlierCount
  const int n = static_cast<int>(src.size());
  if (n < 2) return top;

  // One draw off the caller's generator seeds every per-iteration
  // substream: call-site reproducibility is preserved (the parent stream
  // advances exactly once), and iteration `it` sees values that depend
  // only on (base, it).
  const std::uint64_t base = rng.engine()();

  // Phase 1 (parallel): sample + filter + score each iteration's
  // hypothesis into per-chunk buckets. Scoring (countInliers) is the hot
  // O(iterations * n) part.
  const std::int64_t iters = prm.iterations;
  std::vector<std::vector<RansacCandidate>> buckets(
      static_cast<std::size_t>(chunkCount(0, iters, kIterGrain)));
  parallelFor(0, iters, kIterGrain, [&](std::int64_t it0, std::int64_t it1) {
    auto& bucket = buckets[static_cast<std::size_t>(it0 / kIterGrain)];
    for (std::int64_t it = it0; it < it1; ++it) {
      Pose2 hyp;
      if (!sampleHypothesis(base, it, src, dst, prm, gate, &hyp)) continue;
      const int inliers =
          countInliers(hyp, src, dst, prm.inlierThreshold, gate, nullptr);
      if (inliers < 2) continue;
      bucket.push_back(RansacCandidate{hyp, inliers});
    }
  });

  // Phase 2 (serial, cheap): merge into the top-K list in iteration order
  // — buckets in chunk order, candidates in order within each bucket — so
  // the dedup/merge sequence is the same one a serial loop would perform.
  for (const auto& bucket : buckets) {
    for (const RansacCandidate& scored : bucket) {
      bool merged = false;
      for (auto& cand : top) {
        if (similarTransforms(cand.transform, scored.transform)) {
          if (scored.inlierCount > cand.inlierCount) {
            cand.transform = scored.transform;
            cand.inlierCount = scored.inlierCount;
          }
          merged = true;
          break;
        }
      }
      if (!merged) top.push_back(scored);
      std::sort(top.begin(), top.end(),
                [](const RansacCandidate& a, const RansacCandidate& b) {
                  return a.inlierCount > b.inlierCount;
                });
      if (top.size() > static_cast<std::size_t>(maxCandidates)) {
        top.resize(static_cast<std::size_t>(maxCandidates));
      }
    }
  }
  return top;
}

RansacResult ransacTranslation2D(std::span<const Vec2> src,
                                 std::span<const Vec2> dst,
                                 const RansacParams& prm, Rng& rng) {
  BBA_ASSERT(src.size() == dst.size());
  RansacResult best;
  const int n = static_cast<int>(src.size());
  if (n < 1) return best;

  const double t2 = prm.inlierThreshold * prm.inlierThreshold;
  const auto count = [&](const Vec2& t, std::vector<int>* idx) {
    int c = 0;
    if (idx) idx->clear();
    for (std::size_t k = 0; k < src.size(); ++k) {
      if ((dst[k] - (src[k] + t)).squaredNorm() > t2) continue;
      ++c;
      if (idx) idx->push_back(static_cast<int>(k));
    }
    return c;
  };

  // Parallel sweep with per-chunk winners, combined in chunk order with a
  // strict `>` — exactly the first-best-in-iteration-order rule of a
  // serial scan, at any thread count.
  const std::uint64_t base = rng.engine()();
  const std::int64_t iters = prm.iterations;
  struct ChunkBest {
    int inliers = 0;
    Vec2 t;
  };
  std::vector<ChunkBest> chunkBest(
      static_cast<std::size_t>(chunkCount(0, iters, kIterGrain)));
  parallelFor(0, iters, kIterGrain, [&](std::int64_t it0, std::int64_t it1) {
    ChunkBest& local = chunkBest[static_cast<std::size_t>(it0 / kIterGrain)];
    for (std::int64_t it = it0; it < it1; ++it) {
      CounterRng cr(base, static_cast<std::uint64_t>(it));
      const int i = cr.uniformInt(0, n - 1);
      const Vec2 t = dst[static_cast<std::size_t>(i)] -
                     src[static_cast<std::size_t>(i)];
      if (prm.maxTranslationNorm >= 0.0 && t.norm() > prm.maxTranslationNorm)
        continue;
      const int inliers = count(t, nullptr);
      if (inliers > local.inliers) {
        local.inliers = inliers;
        local.t = t;
      }
    }
  });
  Vec2 bestT;
  for (const ChunkBest& cb : chunkBest) {
    if (cb.inliers > best.inlierCount) {
      best.inlierCount = cb.inliers;
      bestT = cb.t;
    }
  }
  if (best.inlierCount < 1) return best;

  // Refine: mean residual over the inlier set, iterated.
  count(bestT, &best.inlierIndices);
  for (int round = 0; round < prm.refineRounds; ++round) {
    if (best.inlierIndices.empty()) break;
    Vec2 mean{};
    for (int k : best.inlierIndices) {
      mean += dst[static_cast<std::size_t>(k)] -
              src[static_cast<std::size_t>(k)];
    }
    mean = mean / static_cast<double>(best.inlierIndices.size());
    std::vector<int> idx;
    const int c = count(mean, &idx);
    if (c >= best.inlierCount) {
      bestT = mean;
      best.inlierCount = c;
      best.inlierIndices = std::move(idx);
    } else {
      break;
    }
  }
  best.transform = Pose2{bestT, 0.0};
  best.ok = best.inlierCount >= prm.minInliers;
  return best;
}

VerifiedRansacResult ransacRigid2DVerified(
    std::span<const Vec2> src, std::span<const Vec2> dst,
    const RansacParams& prm, Rng& rng, const PoseVerifier& verifier,
    std::span<const double> srcOrientations,
    std::span<const double> dstOrientations) {
  BBA_ASSERT(src.size() == dst.size());
  BBA_ASSERT(srcOrientations.size() == dstOrientations.size());
  BBA_ASSERT(srcOrientations.empty() || srcOrientations.size() == src.size());
  BBA_ASSERT(static_cast<bool>(verifier));

  const Gate gate{srcOrientations, dstOrientations,
                  prm.orientationToleranceRad};
  VerifiedRansacResult best;
  const int n = static_cast<int>(src.size());
  if (n < 2) return best;

  // Phase 1 (parallel): sample + cheap filters + inlier count for every
  // admissible hypothesis, in per-chunk buckets. Counts are independent of
  // the dedup order, so computing them eagerly (including for hypotheses a
  // serial loop would have skipped as near-duplicates) changes wall-clock
  // cost but not any result.
  const std::uint64_t base = rng.engine()();
  const std::int64_t iters = prm.iterations;
  std::vector<std::vector<RansacCandidate>> buckets(
      static_cast<std::size_t>(chunkCount(0, iters, kIterGrain)));
  parallelFor(0, iters, kIterGrain, [&](std::int64_t it0, std::int64_t it1) {
    auto& bucket = buckets[static_cast<std::size_t>(it0 / kIterGrain)];
    for (std::int64_t it = it0; it < it1; ++it) {
      Pose2 hyp;
      if (!sampleHypothesis(base, it, src, dst, prm, gate, &hyp)) continue;
      const int inliers =
          countInliers(hyp, src, dst, prm.inlierThreshold, gate, nullptr);
      if (inliers < std::max(2, prm.minInliers)) continue;
      bucket.push_back(RansacCandidate{hyp, inliers});
    }
  });

  // Phase 2 (serial, iteration order): dedup against already-verified
  // transforms and score the survivors. The verifier is a caller-supplied
  // closure with no thread-safety contract, and the dedup list it gates on
  // is order-dependent, so this stays on one thread.
  std::int64_t admissible = 0;
  for (const auto& bucket : buckets) {
    admissible += static_cast<std::int64_t>(bucket.size());
  }
  BBA_COUNTER_ADD("ransac.bv.admissible_hypotheses", admissible);
  std::vector<Pose2> verified;
  for (const auto& bucket : buckets) {
    for (const RansacCandidate& cand : bucket) {
      bool seen = false;
      for (const Pose2& v : verified) {
        if (similarTransforms(v, cand.transform)) {
          seen = true;
          break;
        }
      }
      if (seen) continue;

      verified.push_back(cand.transform);
      const double score = verifier(cand.transform);
      if (score > best.verifierScore) {
        best.verifierScore = score;
        best.ransac.transform = cand.transform;
        best.ransac.inlierCount = cand.inlierCount;
      }
    }
  }
  BBA_COUNTER_ADD("ransac.bv.verifier_evaluations",
                  static_cast<std::int64_t>(verified.size()));

  if (best.verifierScore < 0.0) return best;
  best.ransac = refineWithGate(best.ransac.transform, src, dst, prm, gate);
  return best;
}

RansacResult refineRigid2D(const Pose2& initial, std::span<const Vec2> src,
                           std::span<const Vec2> dst,
                           const RansacParams& prm,
                           std::span<const double> srcOrientations,
                           std::span<const double> dstOrientations) {
  BBA_ASSERT(src.size() == dst.size());
  const Gate gate{srcOrientations, dstOrientations,
                  prm.orientationToleranceRad};
  return refineWithGate(initial, src, dst, prm, gate);
}

RansacResult ransacRigid2D(std::span<const Vec2> src,
                           std::span<const Vec2> dst,
                           const RansacParams& prm, Rng& rng,
                           std::span<const double> srcOrientations,
                           std::span<const double> dstOrientations) {
  const auto candidates = ransacRigid2DCandidates(
      src, dst, prm, rng, 1, srcOrientations, dstOrientations);
  if (candidates.empty()) return RansacResult{};
  return refineRigid2D(candidates.front().transform, src, dst, prm,
                       srcOrientations, dstOrientations);
}

}  // namespace bba
