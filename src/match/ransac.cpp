#include "match/ransac.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/assert.hpp"
#include "geom/kabsch.hpp"

namespace bba {

namespace {

/// Angular distance modulo pi, in [0, pi/2]. Orientations from the MIM are
/// pi-periodic (a line has no front/back).
double angDistPi(double a) {
  a = std::fmod(a, std::numbers::pi);
  if (a < 0.0) a += std::numbers::pi;
  return std::min(a, std::numbers::pi - a);
}

struct Gate {
  std::span<const double> srcOrient;
  std::span<const double> dstOrient;
  double tolerance = 0.0;

  [[nodiscard]] bool enabled() const { return !srcOrient.empty(); }
  [[nodiscard]] bool pass(std::size_t i, double theta) const {
    if (!enabled()) return true;
    return angDistPi(dstOrient[i] - srcOrient[i] - theta) <= tolerance;
  }
};

int countInliers(const Pose2& T, std::span<const Vec2> src,
                 std::span<const Vec2> dst, double threshold,
                 const Gate& gate, std::vector<int>* indices) {
  const double t2 = threshold * threshold;
  int count = 0;
  if (indices) indices->clear();
  for (std::size_t i = 0; i < src.size(); ++i) {
    if ((dst[i] - T.apply(src[i])).squaredNorm() > t2) continue;
    if (!gate.pass(i, T.theta)) continue;
    ++count;
    if (indices) indices->push_back(static_cast<int>(i));
  }
  return count;
}

Pose2 fitFromIndices(std::span<const Vec2> src, std::span<const Vec2> dst,
                     const std::vector<int>& idx) {
  std::vector<Vec2> s, d;
  s.reserve(idx.size());
  d.reserve(idx.size());
  for (int i : idx) {
    s.push_back(src[static_cast<std::size_t>(i)]);
    d.push_back(dst[static_cast<std::size_t>(i)]);
  }
  return estimateRigid2D(s, d);
}

bool similarTransforms(const Pose2& a, const Pose2& b) {
  return (a.t - b.t).norm() < 2.0 &&
         angularDistance(a.theta, b.theta) < 6.0 * kDegToRad;
}

RansacResult refineWithGate(const Pose2& initial, std::span<const Vec2> src,
                            std::span<const Vec2> dst,
                            const RansacParams& prm, const Gate& gate) {
  RansacResult best;
  best.transform = initial;
  best.inlierCount = countInliers(initial, src, dst, prm.inlierThreshold,
                                  gate, &best.inlierIndices);
  for (int round = 0; round < prm.refineRounds; ++round) {
    if (best.inlierIndices.size() < 2) break;
    const Pose2 refined = fitFromIndices(src, dst, best.inlierIndices);
    std::vector<int> refinedIdx;
    const int refinedCount = countInliers(refined, src, dst,
                                          prm.inlierThreshold, gate,
                                          &refinedIdx);
    if (refinedCount >= best.inlierCount) {
      best.transform = refined;
      best.inlierCount = refinedCount;
      best.inlierIndices = std::move(refinedIdx);
    } else {
      break;
    }
  }
  best.ok = best.inlierCount >= prm.minInliers;
  return best;
}

}  // namespace

std::vector<RansacCandidate> ransacRigid2DCandidates(
    std::span<const Vec2> src, std::span<const Vec2> dst,
    const RansacParams& prm, Rng& rng, int maxCandidates,
    std::span<const double> srcOrientations,
    std::span<const double> dstOrientations) {
  BBA_ASSERT(src.size() == dst.size());
  BBA_ASSERT(srcOrientations.size() == dstOrientations.size());
  BBA_ASSERT(srcOrientations.empty() || srcOrientations.size() == src.size());
  BBA_ASSERT(maxCandidates >= 1);

  const Gate gate{srcOrientations, dstOrientations,
                  prm.orientationToleranceRad};
  std::vector<RansacCandidate> top;  // sorted descending by inlierCount
  const int n = static_cast<int>(src.size());
  if (n < 2) return top;

  for (int it = 0; it < prm.iterations; ++it) {
    const int i = rng.uniformInt(0, n - 1);
    const int j = rng.uniformInt(0, n - 1);
    if (i == j) continue;

    const Vec2 sv = src[static_cast<std::size_t>(j)] -
                    src[static_cast<std::size_t>(i)];
    const Vec2 dv = dst[static_cast<std::size_t>(j)] -
                    dst[static_cast<std::size_t>(i)];
    const double sn = sv.norm();
    if (sn < prm.minPairSeparation) continue;
    // A rigid transform preserves lengths: prune grossly inconsistent pairs
    // before the (more expensive) inlier count.
    if (std::abs(sn - dv.norm()) > 2.0 * prm.inlierThreshold) continue;

    const double theta = std::atan2(dv.y, dv.x) - std::atan2(sv.y, sv.x);
    if (prm.thetaPriorModPi >= 0.0 &&
        angDistPi(theta - prm.thetaPriorModPi) > prm.thetaPriorTolerance)
      continue;
    // The minimal sample must itself pass the orientation gate.
    if (!gate.pass(static_cast<std::size_t>(i), theta) ||
        !gate.pass(static_cast<std::size_t>(j), theta))
      continue;

    const Vec2 t = dst[static_cast<std::size_t>(i)] -
                   src[static_cast<std::size_t>(i)].rotated(theta);
    const Pose2 hyp{t, wrapAngle(theta)};
    if (prm.maxTranslationNorm >= 0.0 && t.norm() > prm.maxTranslationNorm)
      continue;
    const int inliers =
        countInliers(hyp, src, dst, prm.inlierThreshold, gate, nullptr);
    if (inliers < 2) continue;

    // Merge into the top-K list, deduplicating near-identical transforms.
    bool merged = false;
    for (auto& cand : top) {
      if (similarTransforms(cand.transform, hyp)) {
        if (inliers > cand.inlierCount) {
          cand.transform = hyp;
          cand.inlierCount = inliers;
        }
        merged = true;
        break;
      }
    }
    if (!merged) top.push_back(RansacCandidate{hyp, inliers});
    std::sort(top.begin(), top.end(),
              [](const RansacCandidate& a, const RansacCandidate& b) {
                return a.inlierCount > b.inlierCount;
              });
    if (top.size() > static_cast<std::size_t>(maxCandidates)) {
      top.resize(static_cast<std::size_t>(maxCandidates));
    }
  }
  return top;
}

RansacResult ransacTranslation2D(std::span<const Vec2> src,
                                 std::span<const Vec2> dst,
                                 const RansacParams& prm, Rng& rng) {
  BBA_ASSERT(src.size() == dst.size());
  RansacResult best;
  const int n = static_cast<int>(src.size());
  if (n < 1) return best;

  const double t2 = prm.inlierThreshold * prm.inlierThreshold;
  const auto count = [&](const Vec2& t, std::vector<int>* idx) {
    int c = 0;
    if (idx) idx->clear();
    for (std::size_t k = 0; k < src.size(); ++k) {
      if ((dst[k] - (src[k] + t)).squaredNorm() > t2) continue;
      ++c;
      if (idx) idx->push_back(static_cast<int>(k));
    }
    return c;
  };

  Vec2 bestT;
  for (int it = 0; it < prm.iterations; ++it) {
    const int i = rng.uniformInt(0, n - 1);
    const Vec2 t = dst[static_cast<std::size_t>(i)] -
                   src[static_cast<std::size_t>(i)];
    if (prm.maxTranslationNorm >= 0.0 && t.norm() > prm.maxTranslationNorm)
      continue;
    const int inliers = count(t, nullptr);
    if (inliers > best.inlierCount) {
      best.inlierCount = inliers;
      bestT = t;
    }
  }
  if (best.inlierCount < 1) return best;

  // Refine: mean residual over the inlier set, iterated.
  count(bestT, &best.inlierIndices);
  for (int round = 0; round < prm.refineRounds; ++round) {
    if (best.inlierIndices.empty()) break;
    Vec2 mean{};
    for (int k : best.inlierIndices) {
      mean += dst[static_cast<std::size_t>(k)] -
              src[static_cast<std::size_t>(k)];
    }
    mean = mean / static_cast<double>(best.inlierIndices.size());
    std::vector<int> idx;
    const int c = count(mean, &idx);
    if (c >= best.inlierCount) {
      bestT = mean;
      best.inlierCount = c;
      best.inlierIndices = std::move(idx);
    } else {
      break;
    }
  }
  best.transform = Pose2{bestT, 0.0};
  best.ok = best.inlierCount >= prm.minInliers;
  return best;
}

VerifiedRansacResult ransacRigid2DVerified(
    std::span<const Vec2> src, std::span<const Vec2> dst,
    const RansacParams& prm, Rng& rng, const PoseVerifier& verifier,
    std::span<const double> srcOrientations,
    std::span<const double> dstOrientations) {
  BBA_ASSERT(src.size() == dst.size());
  BBA_ASSERT(srcOrientations.size() == dstOrientations.size());
  BBA_ASSERT(srcOrientations.empty() || srcOrientations.size() == src.size());
  BBA_ASSERT(static_cast<bool>(verifier));

  const Gate gate{srcOrientations, dstOrientations,
                  prm.orientationToleranceRad};
  VerifiedRansacResult best;
  const int n = static_cast<int>(src.size());
  if (n < 2) return best;

  // Transforms already sent to the verifier, so near-duplicates of a
  // scored hypothesis don't pay for verification again.
  std::vector<Pose2> verified;

  for (int it = 0; it < prm.iterations; ++it) {
    const int i = rng.uniformInt(0, n - 1);
    const int j = rng.uniformInt(0, n - 1);
    if (i == j) continue;

    const Vec2 sv = src[static_cast<std::size_t>(j)] -
                    src[static_cast<std::size_t>(i)];
    const Vec2 dv = dst[static_cast<std::size_t>(j)] -
                    dst[static_cast<std::size_t>(i)];
    const double sn = sv.norm();
    if (sn < prm.minPairSeparation) continue;
    if (std::abs(sn - dv.norm()) > 2.0 * prm.inlierThreshold) continue;

    const double theta = std::atan2(dv.y, dv.x) - std::atan2(sv.y, sv.x);
    if (prm.thetaPriorModPi >= 0.0 &&
        angDistPi(theta - prm.thetaPriorModPi) > prm.thetaPriorTolerance)
      continue;
    if (!gate.pass(static_cast<std::size_t>(i), theta) ||
        !gate.pass(static_cast<std::size_t>(j), theta))
      continue;

    const Vec2 t = dst[static_cast<std::size_t>(i)] -
                   src[static_cast<std::size_t>(i)].rotated(theta);
    const Pose2 hyp{t, wrapAngle(theta)};
    if (prm.maxTranslationNorm >= 0.0 && t.norm() > prm.maxTranslationNorm)
      continue;

    bool seen = false;
    for (const Pose2& v : verified) {
      if (similarTransforms(v, hyp)) {
        seen = true;
        break;
      }
    }
    if (seen) continue;

    const int inliers =
        countInliers(hyp, src, dst, prm.inlierThreshold, gate, nullptr);
    if (inliers < std::max(2, prm.minInliers)) continue;

    verified.push_back(hyp);
    const double score = verifier(hyp);
    if (score > best.verifierScore) {
      best.verifierScore = score;
      best.ransac.transform = hyp;
      best.ransac.inlierCount = inliers;
    }
  }

  if (best.verifierScore < 0.0) return best;
  best.ransac = refineWithGate(best.ransac.transform, src, dst, prm, gate);
  return best;
}

RansacResult refineRigid2D(const Pose2& initial, std::span<const Vec2> src,
                           std::span<const Vec2> dst,
                           const RansacParams& prm,
                           std::span<const double> srcOrientations,
                           std::span<const double> dstOrientations) {
  BBA_ASSERT(src.size() == dst.size());
  const Gate gate{srcOrientations, dstOrientations,
                  prm.orientationToleranceRad};
  return refineWithGate(initial, src, dst, prm, gate);
}

RansacResult ransacRigid2D(std::span<const Vec2> src,
                           std::span<const Vec2> dst,
                           const RansacParams& prm, Rng& rng,
                           std::span<const double> srcOrientations,
                           std::span<const double> dstOrientations) {
  const auto candidates = ransacRigid2DCandidates(
      src, dst, prm, rng, 1, srcOrientations, dstOrientations);
  if (candidates.empty()) return RansacResult{};
  return refineRigid2D(candidates.front().transform, src, dst, prm,
                       srcOrientations, dstOrientations);
}

}  // namespace bba
