#pragma once

#include <vector>

#include "features/descriptor.hpp"

namespace bba {

/// A keypoint correspondence: indices into the source ("other" car) and
/// destination ("ego" car) descriptor sets.
struct Match {
  int srcIndex = -1;
  int dstIndex = -1;
  float distance = 0.0f;  ///< Euclidean descriptor distance of the match
};

struct MatchParams {
  /// Lowe ratio test: accept only if best/secondBest < ratio. 1.0 disables.
  /// Left disabled by default: in repetitive road scenes the ratio test
  /// starves RANSAC, whose overlap verification is the better filter.
  float ratio = 1.0f;
  /// Keep the k nearest destination descriptors per source keypoint. The
  /// true counterpart frequently ranks 2nd or 3rd among self-similar
  /// structure; downstream geometric verification discards the rest.
  int topK = 2;
  /// Require the match to be mutual (src's best dst also picks src back).
  /// Only applied when topK == 1.
  bool mutualCheck = false;
  /// Also try each source descriptor's 180-degree-flipped variant and use
  /// the smaller distance (resolves the MIM's pi rotation ambiguity).
  bool useFlipped = true;
};

/// Brute-force descriptor matching by Euclidean distance (Algorithm 1
/// line 9).
[[nodiscard]] std::vector<Match> matchDescriptors(const DescriptorSet& src,
                                                  const DescriptorSet& dst,
                                                  const MatchParams& params = {});

}  // namespace bba
