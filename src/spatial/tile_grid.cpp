#include "spatial/tile_grid.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace bba {

namespace {

/// Tile coordinate of a scalar position (floor division by the edge).
std::int64_t tileCoord(double v, double tileSize) {
  return static_cast<std::int64_t>(std::floor(v / tileSize));
}

/// Pack two tile coordinates into one ordered key: each coordinate is
/// bias-shifted into [0, 2^32) so unsigned key order equals lexicographic
/// (tx, ty) order — a row of tiles is a contiguous key range even across
/// the origin. 2^31 tiles per axis is ~10^9 km of world at any practical
/// tile size — effectively unbounded — while keeping the key a single
/// well-ordered integer (the future shard key).
std::uint64_t packKey(std::int64_t tx, std::int64_t ty) {
  BBA_ASSERT(tx > INT32_MIN && tx < INT32_MAX);
  BBA_ASSERT(ty > INT32_MIN && ty < INT32_MAX);
  const std::uint64_t ux = static_cast<std::uint64_t>(tx + 0x80000000ll);
  const std::uint64_t uy = static_cast<std::uint64_t>(ty + 0x80000000ll);
  return (ux << 32) | uy;
}

}  // namespace

TileGrid2::TileGrid2(double tileSize) : tileSize_(tileSize) {
  BBA_ASSERT_MSG(tileSize > 0.0, "TileGrid2 tile size must be positive");
}

std::uint64_t TileGrid2::tileKey(const Vec2& p) const {
  return packKey(tileCoord(p.x, tileSize_), tileCoord(p.y, tileSize_));
}

void TileGrid2::insert(std::uint64_t id, const Vec2& p) {
  std::vector<std::uint64_t>& tile = tiles_[tileKey(p)];
  const auto it = std::lower_bound(tile.begin(), tile.end(), id);
  BBA_ASSERT_MSG(it == tile.end() || *it != id,
                 "TileGrid2: duplicate id insert");
  tile.insert(it, id);
  ++size_;
}

void TileGrid2::remove(std::uint64_t id, const Vec2& p) {
  const auto tileIt = tiles_.find(tileKey(p));
  BBA_ASSERT_MSG(tileIt != tiles_.end(), "TileGrid2: remove from empty tile");
  std::vector<std::uint64_t>& tile = tileIt->second;
  const auto it = std::lower_bound(tile.begin(), tile.end(), id);
  BBA_ASSERT_MSG(it != tile.end() && *it == id,
                 "TileGrid2: remove of unknown id");
  tile.erase(it);
  if (tile.empty()) tiles_.erase(tileIt);
  --size_;
}

std::vector<std::uint64_t> TileGrid2::candidatesInRadius(
    const Vec2& p, double radius) const {
  BBA_ASSERT(radius >= 0.0);
  std::vector<std::uint64_t> out;
  const std::int64_t tx0 = tileCoord(p.x - radius, tileSize_);
  const std::int64_t tx1 = tileCoord(p.x + radius, tileSize_);
  const std::int64_t ty0 = tileCoord(p.y - radius, tileSize_);
  const std::int64_t ty1 = tileCoord(p.y + radius, tileSize_);
  for (std::int64_t tx = tx0; tx <= tx1; ++tx) {
    // One ordered-map probe per row start, then walk the contiguous key
    // range [packKey(tx, ty0), packKey(tx, ty1)] — rows are key-contiguous
    // by construction.
    for (auto it = tiles_.lower_bound(packKey(tx, ty0));
         it != tiles_.end() && it->first <= packKey(tx, ty1); ++it) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  // Tiles are visited in key order, not id order: one sort restores the
  // deterministic ascending-id contract.
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bba
