#include "spatial/kdtree.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"

namespace bba {

namespace {
template <std::size_t Dim>
double sqDist(const std::array<double, Dim>& a,
              const std::array<double, Dim>& b) {
  double s = 0.0;
  for (std::size_t d = 0; d < Dim; ++d) {
    const double diff = a[d] - b[d];
    s += diff * diff;
  }
  return s;
}
}  // namespace

template <std::size_t Dim>
KdTree<Dim>::KdTree(std::vector<Point> points) : points_(std::move(points)) {
  if (points_.empty()) return;
  std::vector<std::size_t> idx(points_.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  nodes_.reserve(points_.size());
  root_ = build(idx, 0, points_.size(), 0);
}

template <std::size_t Dim>
int KdTree<Dim>::build(std::vector<std::size_t>& idx, std::size_t lo,
                       std::size_t hi, int depth) {
  if (lo >= hi) return -1;
  const int dim = depth % static_cast<int>(Dim);
  const std::size_t mid = (lo + hi) / 2;
  std::nth_element(idx.begin() + static_cast<std::ptrdiff_t>(lo),
                   idx.begin() + static_cast<std::ptrdiff_t>(mid),
                   idx.begin() + static_cast<std::ptrdiff_t>(hi),
                   [&](std::size_t a, std::size_t b) {
                     return points_[a][static_cast<std::size_t>(dim)] <
                            points_[b][static_cast<std::size_t>(dim)];
                   });
  const int nodeId = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{idx[mid], dim, -1, -1});
  const int left = build(idx, lo, mid, depth + 1);
  const int right = build(idx, mid + 1, hi, depth + 1);
  nodes_[static_cast<std::size_t>(nodeId)].left = left;
  nodes_[static_cast<std::size_t>(nodeId)].right = right;
  return nodeId;
}

template <std::size_t Dim>
typename KdTree<Dim>::Neighbor KdTree<Dim>::nearest(const Point& query) const {
  if (empty()) throw ComputationError("KdTree::nearest on empty tree");
  Neighbor best;
  nearestRec(root_, query, best);
  return best;
}

template <std::size_t Dim>
void KdTree<Dim>::nearestRec(int node, const Point& query,
                             Neighbor& best) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const Point& p = points_[n.pointIndex];
  const double d2 = sqDist<Dim>(p, query);
  if (d2 < best.squaredDistance) {
    best.squaredDistance = d2;
    best.index = n.pointIndex;
  }
  const double delta = query[static_cast<std::size_t>(n.splitDim)] -
                       p[static_cast<std::size_t>(n.splitDim)];
  const int near = delta < 0.0 ? n.left : n.right;
  const int far = delta < 0.0 ? n.right : n.left;
  nearestRec(near, query, best);
  if (delta * delta < best.squaredDistance) nearestRec(far, query, best);
}

template <std::size_t Dim>
std::vector<std::size_t> KdTree<Dim>::radiusSearch(const Point& query,
                                                   double radius) const {
  BBA_ASSERT(radius >= 0.0);
  std::vector<std::size_t> out;
  radiusRec(root_, query, radius * radius, out);
  return out;
}

template <std::size_t Dim>
void KdTree<Dim>::radiusRec(int node, const Point& query, double r2,
                            std::vector<std::size_t>& out) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const Point& p = points_[n.pointIndex];
  if (sqDist<Dim>(p, query) <= r2) out.push_back(n.pointIndex);
  const double delta = query[static_cast<std::size_t>(n.splitDim)] -
                       p[static_cast<std::size_t>(n.splitDim)];
  const int near = delta < 0.0 ? n.left : n.right;
  const int far = delta < 0.0 ? n.right : n.left;
  radiusRec(near, query, r2, out);
  if (delta * delta <= r2) radiusRec(far, query, r2, out);
}

template class KdTree<2>;
template class KdTree<3>;

}  // namespace bba
