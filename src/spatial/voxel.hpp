#pragma once

#include "pointcloud/point_cloud.hpp"

namespace bba {

/// Downsample a cloud by averaging points within cubic voxels of edge
/// `cellSize` (meters). Keeps the mean timestamp per voxel. Used to bound
/// ICP/clustering cost and to emulate transmitting decimated clouds.
[[nodiscard]] PointCloud voxelDownsample(const PointCloud& cloud,
                                         double cellSize);

}  // namespace bba
