#pragma once

#include <array>
#include <cstddef>
#include <limits>
#include <vector>

namespace bba {

/// Static k-d tree over a fixed set of points (Dim = 2 or 3). Built once,
/// then answers nearest-neighbour and radius queries. Used by the ICP
/// baseline and the clustering detector.
template <std::size_t Dim>
class KdTree {
 public:
  using Point = std::array<double, Dim>;

  KdTree() = default;
  /// Build from a point set (copied). O(n log n).
  explicit KdTree(std::vector<Point> points);

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] const Point& point(std::size_t i) const { return points_[i]; }

  struct Neighbor {
    std::size_t index = 0;
    double squaredDistance = std::numeric_limits<double>::infinity();
  };

  /// Index and squared distance of the nearest stored point. Throws
  /// ComputationError on an empty tree.
  [[nodiscard]] Neighbor nearest(const Point& query) const;

  /// Indices of all stored points within `radius` of the query.
  [[nodiscard]] std::vector<std::size_t> radiusSearch(const Point& query,
                                                      double radius) const;

 private:
  struct Node {
    std::size_t pointIndex = 0;
    int splitDim = 0;
    int left = -1;
    int right = -1;
  };

  int build(std::vector<std::size_t>& idx, std::size_t lo, std::size_t hi,
            int depth);
  void nearestRec(int node, const Point& query, Neighbor& best) const;
  void radiusRec(int node, const Point& query, double r2,
                 std::vector<std::size_t>& out) const;

  std::vector<Point> points_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

using KdTree2 = KdTree<2>;
using KdTree3 = KdTree<3>;

}  // namespace bba
