#include "spatial/voxel.hpp"

#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "common/assert.hpp"

namespace bba {

namespace {
struct Accum {
  Vec3 sum{};
  double timeSum = 0.0;
  std::size_t count = 0;
};

std::uint64_t cellKey(const Vec3& p, double inv) {
  // 21-bit signed packing per axis: supports ~±1e6 cells — far beyond any
  // scene this library produces.
  const auto q = [&](double v) {
    return static_cast<std::uint64_t>(
               static_cast<std::int64_t>(std::floor(v * inv)) + (1 << 20)) &
           0x1FFFFF;
  };
  return q(p.x) | (q(p.y) << 21) | (q(p.z) << 42);
}
}  // namespace

PointCloud voxelDownsample(const PointCloud& cloud, double cellSize) {
  BBA_ASSERT_MSG(cellSize > 0.0, "voxel cell size must be positive");
  std::unordered_map<std::uint64_t, Accum> cells;
  cells.reserve(cloud.size());
  const double inv = 1.0 / cellSize;
  for (const auto& lp : cloud.points) {
    Accum& a = cells[cellKey(lp.p, inv)];
    a.sum += lp.p;
    a.timeSum += lp.time;
    ++a.count;
  }
  PointCloud out;
  out.reserve(cells.size());
  for (const auto& [key, a] : cells) {
    (void)key;
    const double n = static_cast<double>(a.count);
    out.push(a.sum / n, static_cast<float>(a.timeSum / n));
  }
  return out;
}

}  // namespace bba
