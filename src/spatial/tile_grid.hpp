#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "geom/vec.hpp"

namespace bba {

/// Uniform 2-D tile index over (id, position) entries: the approximate-NN
/// front end of the keyframe map service (src/map). Positions hash to
/// square tiles of edge `tileSize`; a radius query gathers every id whose
/// tile intersects the query square — a superset of the true radius set
/// that the caller filters exactly (the store keeps the positions).
///
/// Determinism contract: tiles are held in a key-ordered std::map and ids
/// within one tile stay sorted ascending, so candidate lists are a pure
/// function of the inserted set — independent of insertion order, thread
/// count, or pointer values. Designed so one grid can later shard by tile
/// key range across processes (the key is a pure function of position).
class TileGrid2 {
 public:
  explicit TileGrid2(double tileSize);

  [[nodiscard]] double tileSize() const { return tileSize_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t tileCount() const { return tiles_.size(); }

  /// Packed tile key of a position (row-major over tile coordinates,
  /// bias-shifted so key order == lexicographic (tx, ty) order).
  [[nodiscard]] std::uint64_t tileKey(const Vec2& p) const;

  /// Register `id` at `p`. Ids are caller-unique; inserting the same id
  /// twice (even at the same position) is a caller bug.
  void insert(std::uint64_t id, const Vec2& p);

  /// Remove `id`, previously inserted at `p` (the same position must be
  /// passed back — the grid stores no positions of its own).
  void remove(std::uint64_t id, const Vec2& p);

  /// Every id whose tile intersects the axis-aligned square of half-edge
  /// `radius` centered on `p`, ascending id order. A superset of the ids
  /// within Euclidean `radius`; the caller applies the exact distance
  /// filter.
  [[nodiscard]] std::vector<std::uint64_t> candidatesInRadius(
      const Vec2& p, double radius) const;

 private:
  double tileSize_;
  std::size_t size_ = 0;
  /// tile key -> ids in that tile, ascending.
  std::map<std::uint64_t, std::vector<std::uint64_t>> tiles_;
};

}  // namespace bba
